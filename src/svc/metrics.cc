#include "svc/metrics.h"

#include "obs/trace_context.h"

namespace netd::svc {

void ServiceMetrics::record(const std::string& op, bool ok, double latency_us,
                            std::uint64_t trace_id) {
  PerOp& p = ops[op];
  ++p.count;
  if (!ok) ++p.errors;
  p.latency_us.add(latency_us);
  if (trace_id != 0) p.exemplar_trace_id = trace_id;
}

Json ServiceMetrics::to_json() const {
  Json j = Json::object();
  j.set("connections", Json::uinteger(connections));
  j.set("sessions_created", Json::uinteger(sessions_created));
  j.set("malformed_frames", Json::uinteger(malformed_frames));
  j.set("oversized_frames", Json::uinteger(oversized_frames));
  j.set("disconnects_mid_request", Json::uinteger(disconnects_mid_request));
  j.set("idle_timeouts", Json::uinteger(idle_timeouts));
  j.set("shed_requests", Json::uinteger(shed_requests));
  j.set("dedup_hits", Json::uinteger(dedup_hits));
  j.set("quarantined_trials", Json::uinteger(quarantined_trials));
  j.set("faults", faults.to_json());
  Json ops_json = Json::object();
  for (const auto& [name, p] : ops) {
    Json op = Json::object();
    op.set("count", Json::uinteger(p.count));
    op.set("errors", Json::uinteger(p.errors));
    Json lat = Json::object();
    lat.set("p50", Json::number(p.latency_us.percentile(0.5)));
    lat.set("p90", Json::number(p.latency_us.percentile(0.9)));
    lat.set("p99", Json::number(p.latency_us.percentile(0.99)));
    lat.set("max", Json::number(p.latency_us.max()));
    op.set("lat_us", std::move(lat));
    ops_json.set(name, std::move(op));
  }
  j.set("ops", std::move(ops_json));
  return j;
}

std::vector<obs::Sample> ServiceMetrics::to_samples() const {
  std::vector<obs::Sample> out;
  const auto counter = [&out](const char* name, const char* help,
                              std::uint64_t v) {
    obs::Sample s;
    s.name = name;
    s.help = help;
    s.type = obs::SampleType::kCounter;
    s.value = static_cast<double>(v);
    out.push_back(std::move(s));
  };
  counter("netd_svc_connections_total", "Accepted connections", connections);
  counter("netd_svc_sessions_created_total", "Sessions created",
          sessions_created);
  counter("netd_svc_malformed_frames_total", "Frames that failed to parse",
          malformed_frames);
  counter("netd_svc_oversized_frames_total", "Frames over the size cap",
          oversized_frames);
  counter("netd_svc_disconnects_mid_request_total",
          "Connections lost mid-request", disconnects_mid_request);
  counter("netd_svc_idle_timeouts_total",
          "Connections cut by the idle deadline", idle_timeouts);
  counter("netd_svc_shed_requests_total", "Requests refused as overloaded",
          shed_requests);
  counter("netd_svc_dedup_hits_total", "Retried observes answered from cache",
          dedup_hits);
  counter("netd_svc_quarantined_trials_total",
          "Watchdog-quarantined trials in the fronted campaign",
          quarantined_trials);
  const std::pair<const char*, std::uint64_t> fault_kinds[] = {
      {"delay", faults.delays},
      {"drop", faults.drops},
      {"truncate", faults.truncations},
      {"corrupt", faults.corruptions},
      {"reset", faults.resets},
  };
  for (const auto& [kind, v] : fault_kinds) {
    obs::Sample s;
    s.name = "netd_svc_faults_total";
    s.help = "Chaos faults injected into response frames";
    s.type = obs::SampleType::kCounter;
    s.labels = {{"kind", kind}};
    s.value = static_cast<double>(v);
    out.push_back(std::move(s));
  }
  // One loop per family, not one per op: Prometheus requires every
  // sample of a family to be contiguous under a single # TYPE line, and
  // real parsers (prometheus/common expfmt) reject a repeated TYPE.
  for (const auto& [name, p] : ops) {
    obs::Sample c;
    c.name = "netd_svc_requests_total";
    c.help = "Requests handled, by op";
    c.type = obs::SampleType::kCounter;
    c.labels = {{"op", name}};
    c.value = static_cast<double>(p.count);
    c.exemplar_trace_id = p.exemplar_trace_id;
    out.push_back(std::move(c));
  }
  for (const auto& [name, p] : ops) {
    obs::Sample e;
    e.name = "netd_svc_request_errors_total";
    e.help = "Requests answered with an error, by op";
    e.type = obs::SampleType::kCounter;
    e.labels = {{"op", name}};
    e.value = static_cast<double>(p.errors);
    out.push_back(std::move(e));
  }
  for (const auto& [name, p] : ops) {
    obs::Sample h;
    h.name = "netd_svc_request_latency_us";
    h.help = "Request handling latency (microseconds), by op";
    h.type = obs::SampleType::kHistogram;
    h.labels = {{"op", name}};
    h.hist = p.latency_us;
    out.push_back(std::move(h));
  }
  return out;
}

}  // namespace netd::svc
