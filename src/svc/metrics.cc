#include "svc/metrics.h"

namespace netd::svc {

void ServiceMetrics::record(const std::string& op, bool ok,
                            double latency_us) {
  PerOp& p = ops[op];
  ++p.count;
  if (!ok) ++p.errors;
  p.latency_us.add(latency_us);
}

Json ServiceMetrics::to_json() const {
  Json j = Json::object();
  j.set("connections", Json::uinteger(connections));
  j.set("sessions_created", Json::uinteger(sessions_created));
  j.set("malformed_frames", Json::uinteger(malformed_frames));
  j.set("oversized_frames", Json::uinteger(oversized_frames));
  j.set("disconnects_mid_request", Json::uinteger(disconnects_mid_request));
  j.set("idle_timeouts", Json::uinteger(idle_timeouts));
  j.set("shed_requests", Json::uinteger(shed_requests));
  j.set("dedup_hits", Json::uinteger(dedup_hits));
  j.set("quarantined_trials", Json::uinteger(quarantined_trials));
  j.set("faults", faults.to_json());
  Json ops_json = Json::object();
  for (const auto& [name, p] : ops) {
    Json op = Json::object();
    op.set("count", Json::uinteger(p.count));
    op.set("errors", Json::uinteger(p.errors));
    Json lat = Json::object();
    lat.set("p50", Json::number(p.latency_us.percentile(0.5)));
    lat.set("p90", Json::number(p.latency_us.percentile(0.9)));
    lat.set("p99", Json::number(p.latency_us.percentile(0.99)));
    lat.set("max", Json::number(p.latency_us.max()));
    op.set("lat_us", std::move(lat));
    ops_json.set(name, std::move(op));
  }
  j.set("ops", std::move(ops_json));
  return j;
}

}  // namespace netd::svc
