// Event traces: a JSONL recording of one observation stream, and the
// deterministic replay harness that pins service correctness.
//
// A trace file is newline-delimited JSON, one record per line:
//
//   {"v":1,"type":"config","config":{...}}        once, first line
//   {"v":1,"type":"baseline","mesh":{...}}        healthy T− snapshot
//   {"v":1,"type":"round","mesh":{...},"cp":{..}} one measurement round
//   {"v":1,"type":"diagnosis","round":R,"diagnosis":{...}}
//                                                 what the recording run
//                                                 diagnosed after round R
//
// A `baseline` resets the round counter, so one file can hold many
// episodes back to back (the exp runner emits one baseline per episode).
// Replay drives the identical observation stream through a *fresh*
// troubleshooter — in-process, or across a real socket via svc::Client —
// and fails on the first diagnosis that differs byte-for-byte from the
// recording. Because every input the diagnosis depends on is in the file,
// any divergence is a real behavior change, not noise.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "svc/client.h"
#include "svc/protocol.h"

namespace netd::svc {

struct TraceRecord {
  enum class Type { kConfig, kBaseline, kRound, kDiagnosis };
  Type type = Type::kRound;
  SessionConfig config;                      ///< kConfig
  probe::Mesh mesh;                          ///< kBaseline / kRound
  std::optional<core::ControlPlaneObs> cp;   ///< kRound
  std::size_t round = 0;                     ///< kDiagnosis: 1-based round
  std::string diagnosis;                     ///< kDiagnosis: document text
};

/// Streams trace records to `os` (one line each). The config line is
/// written by the constructor; rounds are counted per baseline.
/// `emit_config = false` suppresses the config line — used when resuming
/// an interrupted recording whose file already starts with one.
class TraceRecorder {
 public:
  TraceRecorder(std::ostream& os, const SessionConfig& config,
                bool emit_config = true);

  void baseline(const probe::Mesh& mesh);
  void round(const probe::Mesh& mesh, const core::ControlPlaneObs* cp);
  /// Records the diagnosis the live run produced after the last round fed.
  void diagnosis(const core::AlgorithmOutput& out);
  /// Pre-serialized variant (used when the document is already in hand).
  void diagnosis_text(const std::string& doc);

  [[nodiscard]] std::size_t rounds() const { return round_; }

 private:
  std::ostream& os_;
  std::size_t round_ = 0;
};

/// Parses a whole trace. std::nullopt (with `error` naming the line) on
/// malformed input or a structurally invalid stream (no leading config,
/// round before baseline, diagnosis round mismatch).
[[nodiscard]] std::optional<std::vector<TraceRecord>> read_trace(
    std::istream& is, std::string* error);

struct ReplayResult {
  std::size_t baselines = 0;
  std::size_t rounds = 0;
  std::size_t diagnoses = 0;  ///< diagnoses produced by the replay
  /// Human-readable divergences; empty = replay matched the recording.
  std::vector<std::string> mismatches;

  [[nodiscard]] bool ok() const { return mismatches.empty(); }
};

/// Replays through a fresh in-process core::Troubleshooter.
[[nodiscard]] ReplayResult replay_in_process(
    const std::vector<TraceRecord>& trace);

/// Replays through a live server: one `hello` with the trace's config on
/// session `session`, then the same baseline/round stream over the wire.
/// Transport errors are reported as mismatches (they are divergences).
[[nodiscard]] ReplayResult replay_through(Client& client,
                                          const std::string& session,
                                          const std::vector<TraceRecord>& trace);

}  // namespace netd::svc
