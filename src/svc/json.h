// A small owned JSON document type with a strict parser, built for the
// service wire protocol and the event-trace files.
//
// Two properties matter more than convenience here and drive the design:
//   1. Byte-identical round-trips: dump(parse(s)) == s for any string this
//      module itself produced. Numbers keep their original lexeme (never
//      reformatted through a double), and objects preserve insertion/parse
//      order, so re-serializing a parsed frame reproduces it exactly —
//      the protocol tests pin this property per message type.
//   2. Hostile input: the parser is fed raw bytes off a socket. It
//      validates strictly (trailing garbage, bad escapes, lone surrogates,
//      malformed numbers), bounds recursion depth, and reports the byte
//      offset of the first error instead of crashing or guessing.
//
// The writer emits the same compact style as core/json_export (no
// whitespace, core::json_escape string escaping) so diagnosis objects can
// be spliced into frames and later re-serialized without drift.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace netd::svc {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Maximum container nesting parse() accepts: arrays/objects may nest
  /// at most this many levels; one deeper fails with a structured
  /// "nesting too deep" error naming the byte offset — the bound that
  /// keeps hostile input from exhausting the stack. Documents this
  /// module itself writes stay far below it.
  static constexpr std::size_t kMaxParseDepth = 96;

  Json() = default;  ///< null

  // Factories (constructors stay trivial so vectors of Json are cheap).
  [[nodiscard]] static Json null();
  [[nodiscard]] static Json boolean(bool b);
  /// Formats like core/json_export: integral doubles print as integers.
  [[nodiscard]] static Json number(double v);
  [[nodiscard]] static Json integer(long long v);
  [[nodiscard]] static Json uinteger(unsigned long long v);
  /// A number carrying `lexeme` verbatim; the parser uses this to keep
  /// re-serialization byte-identical. `lexeme` must be a valid JSON number.
  [[nodiscard]] static Json number_from_lexeme(std::string lexeme);
  [[nodiscard]] static Json string(std::string s);
  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();
  /// Splices a pre-serialized JSON document in verbatim (no validation);
  /// the caller guarantees `raw` is well-formed. Used to embed diagnosis
  /// objects exactly as core::to_json produced them.
  [[nodiscard]] static Json raw(std::string raw);

  /// Strict parse of exactly one document covering all of `text`.
  /// On failure returns std::nullopt and, when `error` is non-null, a
  /// message with the byte offset of the problem.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text,
                                                 std::string* error = nullptr);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_double() const;
  [[nodiscard]] long long as_int() const;
  [[nodiscard]] const std::string& as_string() const { return str_; }

  // Arrays.
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const Json& operator[](std::size_t i) const {
    return items_[i];
  }
  Json& push_back(Json v);

  // Objects (insertion-ordered; keys are unique).
  [[nodiscard]] const Json* find(std::string_view key) const;
  Json& set(std::string key, Json value);
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const {
    return members_;
  }

  /// Compact serialization (stable: preserves number lexemes and object
  /// member order).
  [[nodiscard]] std::string dump() const;
  void dump_to(std::string& out) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string str_;  ///< string value, number lexeme, or raw splice
  bool raw_ = false;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace netd::svc
