// The netdiag service wire protocol, version 1.
//
// Newline-delimited JSON frames over a byte stream (TCP or a Unix-domain
// socket): one request per line, one response per line, strictly in order.
// Every frame carries {"v":1} and requests carry an "op". The ops mirror
// the in-process core::Troubleshooter facade so a remote observation feed
// drives exactly the deployment loop of paper §6:
//
//   hello         create-or-attach a named diagnosis session
//   set_baseline  install the healthy T− full-mesh snapshot
//   observe       feed one measurement round (+ optional control-plane
//                 observations); returns the diagnosis when an alarm fires
//   observe_batch feed several spooled rounds from one sensor agent in a
//                 single frame; per-(session, src) seq dedup + an ack
//                 watermark give redelivering agents exactly-once ingest
//   query         fetch the latest diagnosis of a session
//   stats         service request/latency counters (util::Histogram)
//   metrics       Prometheus text-format exposition of the obs registry
//                 plus the service counters (operator scrape surface)
//   events        drain the server's structured event ring (slow
//                 requests, sheds, dedups, quarantines, fsync stalls)
//                 from a cursor, capped — the `netdiag tail` surface
//   shutdown      stop the server after responding
//
// Distributed tracing: hello/set_baseline/observe/observe_batch/query
// (and every batch item) carry an optional "trace" object — the
// obs::TraceContext stamped by the sender at measurement time — so the
// server can join its spans to the agent's. The field is omitted when
// absent; trace-less frames are byte-identical to protocol output from
// before the field existed (golden-pinned).
//
// Serialization reuses the Json document type, so serialize(parse(x)) is
// byte-identical for every message this module produced — the protocol
// tests pin that property per message type. Embedded diagnosis documents
// are spliced verbatim from core::to_json and survive round-trips
// unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "core/solver.h"
#include "core/troubleshooter.h"
#include "obs/events.h"
#include "obs/trace_context.h"
#include "probe/prober.h"
#include "svc/json.h"

namespace netd::svc {

inline constexpr int kProtocolVersion = 1;
/// Hard cap on one frame's bytes; oversized frames are a protocol error.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

// Structured ErrorResponse codes. Errors without a code are semantic
// (bad config, mismatched mesh, ...) and must not be retried blindly;
// these name conditions a client reacts to mechanically:
//   bad_frame        the frame did not survive the wire (unparseable /
//                    oversized) — the stream is still in sync, resend
//   overloaded       the server shed the request; honor retry_after_ms
//   unknown_session  the named session does not exist — after a server
//                    restart this is how an agent learns its session (and
//                    every observation the old incarnation applied) is
//                    gone: re-hello and re-ship from the baseline
//   no_baseline      the session exists but holds no baseline yet; same
//                    remedy as unknown_session for a shipping agent
inline constexpr const char* kErrBadFrame = "bad_frame";
inline constexpr const char* kErrOverloaded = "overloaded";
inline constexpr const char* kErrUnknownSession = "unknown_session";
inline constexpr const char* kErrNoBaseline = "no_baseline";

/// The Troubleshooter configuration a session runs with, in wire/trace
/// form. `algo` selects the solver preset ("tomo", "nd-edge" or
/// "nd-bgpigp"; ND-LG needs a Looking Glass service and is not exposed
/// over the wire), `granularity` the logical-link expansion ("none",
/// "per-neighbor", "per-prefix").
struct SessionConfig {
  std::size_t alarm_threshold = 1;
  std::string algo = "nd-bgpigp";
  std::string granularity = "per-neighbor";

  /// Maps onto the in-process facade's config; std::nullopt (with a
  /// message in `error`) when algo/granularity name nothing.
  [[nodiscard]] std::optional<core::Troubleshooter::Config> resolve(
      std::string* error = nullptr) const;

  [[nodiscard]] bool operator==(const SessionConfig&) const = default;
};

// ---------------------------------------------------------------------------
// Requests.

struct HelloRequest {
  std::string session;
  SessionConfig config;
  /// Sender-stamped trace identity; omitted on the wire when absent.
  std::optional<obs::TraceContext> trace;
};

struct SetBaselineRequest {
  std::string session;
  probe::Mesh mesh;
  std::optional<obs::TraceContext> trace;
};

struct ObserveRequest {
  std::string session;
  probe::Mesh mesh;
  std::optional<core::ControlPlaneObs> cp;
  /// Per-session sequence number for exactly-once observation rounds: a
  /// retried observe carrying the seq of the round the server already
  /// applied is answered from the session's cache instead of feeding the
  /// round twice. Absent = no dedup (pre-retry clients).
  std::optional<std::uint64_t> seq;
  std::optional<obs::TraceContext> trace;

  ObserveRequest() = default;
  ObserveRequest(std::string s, probe::Mesh m,
                 std::optional<core::ControlPlaneObs> c,
                 std::optional<std::uint64_t> q = std::nullopt)
      : session(std::move(s)), mesh(std::move(m)), cp(std::move(c)), seq(q) {}
};

/// One spooled observation inside an ObserveBatchRequest. Unlike the
/// single-shot ObserveRequest the seq is mandatory: batched ingest exists
/// for agents that redeliver after crashes, and redelivery without a
/// dedup key would double-count rounds.
struct ObserveItem {
  std::uint64_t seq = 0;
  probe::Mesh mesh;
  std::optional<core::ControlPlaneObs> cp;
  /// Trace root the agent stamped when the round was measured. Derived
  /// deterministically from (agent seed, name, seq), so a redelivered
  /// item carries the *same* ids and joins the original trace.
  std::optional<obs::TraceContext> trace;
};

/// A spool drain from one sensor agent: observations in strictly
/// increasing seq order, deduplicated server-side against the per-
/// (session, src) ack watermark — items at or below the watermark were
/// applied by an earlier delivery and are skipped, so redelivering a
/// whole batch after a lost response is idempotent. An empty batch is a
/// watermark probe: it applies nothing and returns the current ack.
struct ObserveBatchRequest {
  std::string session;
  /// The shipping agent's identity; watermarks are tracked per source so
  /// several agents can feed one session without colliding seq spaces.
  std::string src;
  std::vector<ObserveItem> items;
  /// Trace of the shipping pass itself (items carry their own roots).
  std::optional<obs::TraceContext> trace;
};

struct QueryRequest {
  std::string session;
  std::optional<obs::TraceContext> trace;
};

struct StatsRequest {};

struct MetricsRequest {};

/// Drains the server's obs::EventRing from `cursor` (exclusive), oldest
/// first, at most `cap` events (0 = server default). Poll in a loop with
/// the returned next_cursor to tail the ring live.
struct EventsRequest {
  std::uint64_t cursor = 0;
  std::uint64_t cap = 0;
};

struct ShutdownRequest {};

using Request =
    std::variant<HelloRequest, SetBaselineRequest, ObserveRequest,
                 ObserveBatchRequest, QueryRequest, StatsRequest,
                 MetricsRequest, EventsRequest, ShutdownRequest>;

// ---------------------------------------------------------------------------
// Responses.

struct ErrorResponse {
  std::string message;
  /// Machine-readable code (kErrBadFrame, kErrOverloaded); empty for
  /// semantic errors.
  std::string code;
  /// With kErrOverloaded: how long the client should back off before
  /// retrying, in milliseconds.
  std::optional<std::uint64_t> retry_after_ms;

  ErrorResponse() = default;
  ErrorResponse(std::string msg, std::string c = "",
                std::optional<std::uint64_t> retry = std::nullopt)
      : message(std::move(msg)), code(std::move(c)), retry_after_ms(retry) {}
};

struct HelloResponse {
  std::string session;
  bool created = false;  ///< false = attached to an existing session
  SessionConfig config;  ///< the session's effective configuration
  /// The server's recovery epoch, bumped once per start when it runs
  /// with a durable state directory. 0 = ephemeral server (the field is
  /// omitted on the wire, so pre-durability frames are unchanged). A
  /// client that sees the epoch change across hellos knows it is talking
  /// to a restarted — but state-intact — server.
  std::uint64_t epoch = 0;
};

struct SetBaselineResponse {
  std::size_t pairs = 0;
};

struct ObserveResponse {
  std::size_t round = 0;   ///< 1-based round index within the session
  bool alarmed = false;    ///< any pair's alarm currently raised
  /// Present exactly when this round fired a diagnosis: the core::to_json
  /// document, verbatim.
  std::optional<std::string> diagnosis;
};

struct ObserveBatchResponse {
  /// Highest seq applied for (session, src) — the agent's durable ship
  /// watermark. Records at or below it may be deleted from the spool.
  std::uint64_t ack = 0;
  std::size_t applied = 0;  ///< items fed to the troubleshooter this call
  std::size_t deduped = 0;  ///< items skipped as already applied
  std::size_t round = 0;    ///< session round counter after the batch
  bool alarmed = false;
  /// Diagnosis document of the last applied item that fired one.
  std::optional<std::string> diagnosis;
};

struct QueryResponse {
  std::size_t round = 0;  ///< round of the latest diagnosis (0 = none yet)
  std::optional<std::string> diagnosis;
};

struct StatsResponse {
  std::string stats;  ///< ServiceMetrics::to_json document, verbatim
};

struct MetricsResponse {
  /// Prometheus text exposition document (\n-separated lines inside one
  /// JSON string on the wire).
  std::string text;
};

/// One page of the server's event ring. Events are obs::Event verbatim;
/// `kind` travels as its stable lowercase name, ids as hex strings.
struct EventsResponse {
  std::uint64_t next_cursor = 0;
  std::vector<obs::Event> events;
};

struct ShutdownResponse {};

using Response =
    std::variant<ErrorResponse, HelloResponse, SetBaselineResponse,
                 ObserveResponse, ObserveBatchResponse, QueryResponse,
                 StatsResponse, MetricsResponse, EventsResponse,
                 ShutdownResponse>;

// ---------------------------------------------------------------------------
// Frame serialization. Serializers emit one line *without* the trailing
// newline (the transport adds it); parsers accept exactly one document.

[[nodiscard]] std::string serialize(const Request& req);
[[nodiscard]] std::string serialize(const Response& rsp);

/// Parses + validates one request frame. On failure returns std::nullopt
/// with a diagnostic in `error` (never throws on hostile input).
[[nodiscard]] std::optional<Request> parse_request(std::string_view frame,
                                                   std::string* error);
[[nodiscard]] std::optional<Response> parse_response(std::string_view frame,
                                                     std::string* error);

// ---------------------------------------------------------------------------
// Payload codecs, shared with the event-trace format.

[[nodiscard]] Json mesh_to_json(const probe::Mesh& mesh);
[[nodiscard]] std::optional<probe::Mesh> mesh_from_json(const Json& j,
                                                        std::string* error);

[[nodiscard]] Json cp_to_json(const core::ControlPlaneObs& cp);
[[nodiscard]] std::optional<core::ControlPlaneObs> cp_from_json(
    const Json& j, std::string* error);

[[nodiscard]] Json session_config_to_json(const SessionConfig& cfg);
[[nodiscard]] std::optional<SessionConfig> session_config_from_json(
    const Json& j, std::string* error);

/// {"tid":"0x...","sid":"0x..."} — the wire form of a trace identity.
[[nodiscard]] Json trace_to_json(const obs::TraceContext& trace);
/// Reads an optional "trace" member of `obj` into `*out` (left untouched
/// when the field is absent). Returns false with `error` on a malformed
/// field.
[[nodiscard]] bool trace_from_json(const Json& obj,
                                   std::optional<obs::TraceContext>* out,
                                   std::string* error);

}  // namespace netd::svc
