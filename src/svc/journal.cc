#include "svc/journal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/events.h"
#include "obs/registry.h"
#include "svc/json.h"
#include "util/atomic_file.h"

namespace netd::svc {

namespace rlog = util::record_log;

namespace {

constexpr const char* kSnapshotName = "SNAPSHOT";
constexpr const char* kEpochName = "EPOCH";
constexpr const char* kSegPrefix = "wal-";
constexpr const char* kSegSuffix = ".ndj";
constexpr const char* kQuarantineSuffix = ".quarantined";

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
  return false;
}

bool is_segment_name(const std::string& name) {
  return name.size() > std::strlen(kSegPrefix) + std::strlen(kSegSuffix) &&
         name.rfind(kSegPrefix, 0) == 0 &&
         name.rfind(kSegSuffix) == name.size() - std::strlen(kSegSuffix);
}

bool ends_with(const std::string& name, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return name.size() >= n && name.rfind(suffix) == name.size() - n;
}

obs::Counter& torn_tail_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "netd_svc_journal_torn_tails_total",
      "Journal segments whose torn tail was truncated at recovery");
  return c;
}

obs::Counter& quarantined_segment_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "netd_svc_journal_quarantined_segments_total",
      "Journal files renamed *.quarantined instead of being replayed");
  return c;
}

obs::Counter& append_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "netd_svc_journal_appends_total",
      "Records appended to session write-ahead journals");
  return c;
}

obs::Counter& fsync_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "netd_svc_journal_fsyncs_total",
      "fsync(2) calls issued by session journals");
  return c;
}

obs::Counter& snapshot_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "netd_svc_journal_snapshots_total",
      "Session snapshots committed (journal segments pruned)");
  return c;
}

/// fsyncs slower than this land in the event ring: on a healthy disk an
/// fsync is sub-millisecond, and a stalled one is exactly the latency
/// spike an operator tailing the ring wants to see attributed.
constexpr std::int64_t kFsyncStallUs = 20'000;

/// Runs fsync(2) and reports a kFsyncStall event when it took too long.
/// Returns fsync's return value.
int timed_fsync(int fd, const std::string& dir) {
  const auto t0 = std::chrono::steady_clock::now();
  const int rc = ::fsync(fd);
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  fsync_counter().inc();
  if (us >= kFsyncStallUs) {
    obs::EventRing::record(obs::EventKind::kFsyncStall, dir, 0,
                           static_cast<std::uint64_t>(us));
  }
  return rc;
}

}  // namespace

void register_journal_metrics() {
  torn_tail_counter();
  quarantined_segment_counter();
  append_counter();
  fsync_counter();
  snapshot_counter();
}

const char* to_string(FsyncPolicy p) {
  return p == FsyncPolicy::kAlways ? "always" : "batch";
}

std::optional<FsyncPolicy> fsync_policy_from_string(std::string_view s) {
  if (s == "always") return FsyncPolicy::kAlways;
  if (s == "batch") return FsyncPolicy::kBatch;
  return std::nullopt;
}

std::string encode_session_dir(std::string_view session) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(session.size());
  for (const char c : session) {
    const bool safe = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (safe) {
      out.push_back(c);
    } else {
      const auto b = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(hex[b >> 4]);
      out.push_back(hex[b & 0xf]);
    }
  }
  return out;
}

std::optional<std::string> decode_session_dir(std::string_view dir) {
  auto hex_val = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(dir.size());
  for (std::size_t i = 0; i < dir.size(); ++i) {
    const char c = dir[i];
    if (c == '%') {
      if (i + 2 >= dir.size()) return std::nullopt;
      const int hi = hex_val(dir[i + 1]);
      const int lo = hex_val(dir[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
      continue;
    }
    const bool safe = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!safe) return std::nullopt;
    out.push_back(c);
  }
  return out;
}

std::uint64_t read_epoch(const std::string& state_dir) {
  const auto doc = util::read_file(state_dir + "/" + kEpochName, nullptr);
  if (!doc.has_value()) return 0;
  const auto j = Json::parse(*doc, nullptr);
  if (!j || !j->is_object()) return 0;
  const Json* e = j->find("epoch");
  if (e == nullptr || !e->is_number() || e->as_int() <= 0) return 0;
  return static_cast<std::uint64_t>(e->as_int());
}

std::uint64_t bump_epoch(const std::string& state_dir, std::string* error) {
  if (::mkdir(state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    fail(error, "mkdir " + state_dir);
    return 0;
  }
  const std::string path = state_dir + "/" + kEpochName;
  util::remove_stale_temps(path);
  const std::uint64_t next = read_epoch(state_dir) + 1;
  Json j = Json::object();
  j.set("epoch", Json::uinteger(next));
  if (!util::atomic_write_file(path, j.dump() + "\n", error)) return 0;
  return next;
}

std::vector<std::string> list_session_dirs(const std::string& state_dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir((state_dir + "/sessions").c_str());
  if (d == nullptr) return out;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    out.push_back(name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

Inspection inspect_session_dir(const std::string& dir) {
  Inspection out;
  if (const auto snap = util::read_file(dir + "/" + kSnapshotName, nullptr);
      snap.has_value()) {
    out.has_snapshot = true;
    out.snapshot = *snap;
  }
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (ends_with(name, kQuarantineSuffix)) {
      ++out.quarantined_files;
      continue;
    }
    if (is_segment_name(name)) names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  for (const auto& name : names) {
    SegmentInfo info;
    info.path = dir + "/" + name;
    const auto bytes = util::read_file(info.path, nullptr);
    if (bytes.has_value()) info.scan = rlog::scan(*bytes);
    out.segments.push_back(std::move(info));
  }
  return out;
}

// ---------------------------------------------------------------------------

std::unique_ptr<SessionJournal> SessionJournal::open(Options opts,
                                                     std::string* error,
                                                     RecoveryStats* stats) {
  std::unique_ptr<SessionJournal> j(new SessionJournal(std::move(opts)));
  RecoveryStats local;
  RecoveryStats* s = stats != nullptr ? stats : &local;
  *s = RecoveryStats{};  // recover() accumulates; a reused struct must not
  if (!j->recover(error, s)) return nullptr;
  if (s->quarantined) return nullptr;
  return j;
}

SessionJournal::~SessionJournal() {
  if (active_fd_ >= 0) ::close(active_fd_);
}

std::string SessionJournal::segment_path(std::uint64_t first_lsn) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%020llu%s", kSegPrefix,
                static_cast<unsigned long long>(first_lsn), kSegSuffix);
  return opts_.dir + "/" + name;
}

bool SessionJournal::quarantine_all(std::string* error) {
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
  }
  // Walk the directory rather than the in-memory segment list: when the
  // snapshot itself is the corrupt file, recovery quarantines before any
  // segment was registered, and those files must not escape.
  std::vector<std::string> victims;
  DIR* d = ::opendir(opts_.dir.c_str());
  if (d == nullptr) return fail(error, "opendir " + opts_.dir);
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (is_segment_name(name) || name == kSnapshotName) {
      victims.push_back(opts_.dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(victims.begin(), victims.end());
  for (const auto& path : victims) {
    // Renamed aside, never deleted: the bytes are evidence of what went
    // wrong, and the session itself continues via the amnesia protocol.
    if (::rename(path.c_str(), (path + kQuarantineSuffix).c_str()) != 0) {
      return fail(error, "quarantine " + path);
    }
    quarantined_segment_counter().inc();
  }
  segments_.clear();
  records_.clear();
  snapshot_.reset();
  next_lsn_ = 1;
  records_since_snapshot_ = 0;
  return true;
}

bool SessionJournal::recover(std::string* error, RecoveryStats* stats) {
  if (::mkdir(opts_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return fail(error, "mkdir " + opts_.dir);
  }
  const std::string snap_path = opts_.dir + "/" + kSnapshotName;
  // A snapshot writer that died between temp write and rename leaves a
  // stale temp; the committed SNAPSHOT (if any) is still intact.
  util::remove_stale_temps(snap_path);

  // The snapshot's "wal" field is the LSN floor: records at or below it
  // are already folded in. An unreadable or wal-less snapshot is
  // corruption — quarantine rather than replay against the wrong base.
  std::uint64_t wal = 0;
  if (const auto snap = util::read_file(snap_path, nullptr);
      snap.has_value()) {
    const auto doc = Json::parse(*snap, nullptr);
    const Json* w = doc && doc->is_object() ? doc->find("wal") : nullptr;
    if (w == nullptr || !w->is_number() || w->as_int() < 0) {
      stats->quarantined = true;
    } else {
      wal = static_cast<std::uint64_t>(w->as_int());
      snapshot_ = *snap;
    }
  }

  std::vector<std::string> names;
  DIR* d = ::opendir(opts_.dir.c_str());
  if (d == nullptr) return fail(error, "opendir " + opts_.dir);
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (is_segment_name(name)) names.push_back(name);
  }
  ::closedir(d);
  // Zero-padded first-LSN names: lexicographic order = append order.
  std::sort(names.begin(), names.end());

  for (std::size_t i = 0; i < names.size() && !stats->quarantined; ++i) {
    const bool is_last = i + 1 == names.size();
    const std::string path = opts_.dir + "/" + names[i];
    const auto bytes = util::read_file(path, error);
    if (!bytes.has_value()) return false;
    const rlog::Scan scan = rlog::scan(*bytes);
    if (scan.verdict == rlog::Scan::Verdict::kCorrupt ||
        (scan.verdict == rlog::Scan::Verdict::kTornTail && !is_last)) {
      stats->quarantined = true;
      break;
    }
    if (scan.verdict == rlog::Scan::Verdict::kTornTail &&
        scan.good_bytes < bytes->size()) {
      // SIGKILL mid-append: cut back to the last complete record.
      if (!util::truncate_file(path, scan.good_bytes, error)) return false;
      ++stats->torn_tails;
      stats->torn_bytes += bytes->size() - scan.good_bytes;
      torn_tail_counter().inc();
    }
    if (scan.records == 0) {
      // A rotation that never received a record (or a tail truncated to
      // nothing); harmless, remove it.
      if (::unlink(path.c_str()) != 0) return fail(error, "unlink " + path);
      continue;
    }
    // Segments must be contiguous: the journal never sheds, and
    // snapshot pruning deletes only fully covered segments — a gap
    // means a file went missing underneath us.
    if (!segments_.empty() &&
        scan.first_seq != segments_.back().last_lsn + 1) {
      stats->quarantined = true;
      break;
    }
    rlog::for_each(
        std::string_view(bytes->data(), scan.good_bytes),
        [this, wal](std::uint64_t lsn, std::string_view payload) {
          if (lsn > wal) records_.emplace_back(lsn, std::string(payload));
          return true;
        });
    segments_.push_back(
        Segment{path, scan.first_seq, scan.last_seq, scan.good_bytes});
    next_lsn_ = std::max(next_lsn_, scan.last_seq + 1);
  }
  // Replayable records must pick up exactly where the snapshot left off;
  // a hole between wal and the first surviving record is silent loss.
  for (std::size_t i = 0; i < records_.size() && !stats->quarantined; ++i) {
    const std::uint64_t expect = wal + 1 + i;
    if (records_[i].first != expect) stats->quarantined = true;
  }
  if (stats->quarantined) {
    if (!quarantine_all(error)) return false;
    return true;
  }
  next_lsn_ = std::max(next_lsn_, wal + 1);
  // Pending replay counts toward the next snapshot so a long recovered
  // tail is folded in soon instead of being replayed again next restart.
  records_since_snapshot_ = records_.size();
  stats->segments = segments_.size();
  stats->records = records_.size();
  if (!segments_.empty()) {
    if (!open_active(false, error)) return false;
  }
  return true;
}

bool SessionJournal::open_active(bool create, std::string* error) {
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
  }
  if (segments_.empty()) {
    if (!create) return true;
    segments_.push_back(Segment{segment_path(next_lsn_), next_lsn_, 0, 0});
  }
  const int flags = O_WRONLY | O_APPEND | (create ? O_CREAT : 0);
  active_fd_ = ::open(segments_.back().path.c_str(), flags, 0644);
  if (active_fd_ < 0) return fail(error, "open " + segments_.back().path);
  return true;
}

bool SessionJournal::rotate(std::string* error) {
  if (active_fd_ >= 0) {
    // kBatch durability barrier: the retiring segment's records reach the
    // disk before the writer moves on.
    if (opts_.fsync == FsyncPolicy::kBatch &&
        timed_fsync(active_fd_, opts_.dir) != 0) {
      return fail(error, "fsync " + segments_.back().path);
    }
    ::close(active_fd_);
    active_fd_ = -1;
  }
  segments_.push_back(Segment{segment_path(next_lsn_), next_lsn_, 0, 0});
  return open_active(true, error);
}

std::uint64_t SessionJournal::append(std::string_view payload,
                                     std::string* error) {
  if (payload.size() > rlog::kMaxRecordBytes) {
    if (error != nullptr) *error = "journal record exceeds kMaxRecordBytes";
    return 0;
  }
  if (segments_.empty() || active_fd_ < 0) {
    if (!open_active(true, error)) return 0;
  } else if (segments_.back().bytes >= opts_.max_segment_bytes) {
    if (!rotate(error)) return 0;
  }
  const std::uint64_t lsn = next_lsn_;
  const std::string frame = rlog::encode_record(lsn, payload);
  if (!rlog::write_all_fd(active_fd_, frame.data(), frame.size())) {
    // A partial write is the torn tail the next recovery truncates.
    fail(error, "write " + segments_.back().path);
    return 0;
  }
  if (opts_.fsync == FsyncPolicy::kAlways) {
    if (timed_fsync(active_fd_, opts_.dir) != 0) {
      fail(error, "fsync " + segments_.back().path);
      return 0;
    }
  }
  Segment& seg = segments_.back();
  seg.last_lsn = lsn;
  seg.bytes += frame.size();
  ++next_lsn_;
  ++records_since_snapshot_;
  append_counter().inc();
  return lsn;
}

bool SessionJournal::commit_snapshot(const std::string& doc,
                                     std::string* error) {
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
  }
  // atomic_write_file fsyncs the document and the directory, so once it
  // returns the snapshot is the durable truth and every journal record
  // it covers is redundant. A crash between the rename and the unlinks
  // below only leaves fully covered segments behind — recovery filters
  // their records out by LSN.
  if (!util::atomic_write_file(opts_.dir + "/" + kSnapshotName, doc, error)) {
    // Keep journaling; a missed snapshot costs replay time, not data.
    if (!open_active(false, error)) return false;
    return false;
  }
  for (const auto& seg : segments_) {
    if (::unlink(seg.path.c_str()) != 0) return fail(error, "unlink " + seg.path);
  }
  segments_.clear();
  snapshot_ = doc;
  records_since_snapshot_ = 0;
  snapshot_counter().inc();
  return true;
}

}  // namespace netd::svc
