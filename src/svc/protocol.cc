#include "svc/protocol.h"

#include <type_traits>

#include "core/algorithms.h"

namespace netd::svc {

namespace {

// Hop kinds on the wire: one-letter tags keep full-mesh frames small.
const char* kind_tag(graph::NodeKind k) {
  switch (k) {
    case graph::NodeKind::kRouter: return "r";
    case graph::NodeKind::kSensor: return "s";
    case graph::NodeKind::kUnidentified: return "u";
    case graph::NodeKind::kLogical: return "l";
  }
  return "r";
}

std::optional<graph::NodeKind> kind_from_tag(const std::string& t) {
  if (t == "r") return graph::NodeKind::kRouter;
  if (t == "s") return graph::NodeKind::kSensor;
  if (t == "u") return graph::NodeKind::kUnidentified;
  if (t == "l") return graph::NodeKind::kLogical;
  return std::nullopt;
}

bool set_error(std::string* error, const std::string& what) {
  if (error != nullptr && error->empty()) *error = what;
  return false;
}

const Json* require(const Json& obj, std::string_view key, Json::Type type,
                    std::string* error) {
  const Json* v = obj.find(key);
  if (v == nullptr) {
    set_error(error, "missing field '" + std::string(key) + "'");
    return nullptr;
  }
  if (v->type() != type) {
    set_error(error, "field '" + std::string(key) + "' has wrong type");
    return nullptr;
  }
  return v;
}

std::optional<std::size_t> require_uint(const Json& obj, std::string_view key,
                                        std::string* error) {
  const Json* v = require(obj, key, Json::Type::kNumber, error);
  if (v == nullptr) return std::nullopt;
  const long long n = v->as_int();
  if (n < 0) {
    set_error(error, "field '" + std::string(key) + "' must be >= 0");
    return std::nullopt;
  }
  return static_cast<std::size_t>(n);
}

}  // namespace

std::optional<core::Troubleshooter::Config> SessionConfig::resolve(
    std::string* error) const {
  core::Troubleshooter::Config cfg;
  if (alarm_threshold == 0) {
    set_error(error, "alarm threshold must be >= 1");
    return std::nullopt;
  }
  cfg.alarm_threshold = alarm_threshold;
  if (algo == "tomo") {
    cfg.solver = core::tomo_options();
  } else if (algo == "nd-edge") {
    cfg.solver = core::nd_edge_options();
  } else if (algo == "nd-bgpigp") {
    cfg.solver = core::nd_bgpigp_options();
  } else {
    set_error(error, "unknown algorithm '" + algo +
                         "' (tomo, nd-edge, nd-bgpigp)");
    return std::nullopt;
  }
  if (granularity == "none") {
    cfg.granularity = core::LogicalMode::kNone;
  } else if (granularity == "per-neighbor") {
    cfg.granularity = core::LogicalMode::kPerNeighbor;
  } else if (granularity == "per-prefix") {
    cfg.granularity = core::LogicalMode::kPerPrefix;
  } else {
    set_error(error, "unknown granularity '" + granularity +
                         "' (none, per-neighbor, per-prefix)");
    return std::nullopt;
  }
  return cfg;
}

// ---------------------------------------------------------------------------
// Payload codecs.

Json mesh_to_json(const probe::Mesh& mesh) {
  Json paths = Json::array();
  for (const auto& p : mesh.paths) {
    Json jp = Json::object();
    jp.set("src", Json::uinteger(p.src));
    jp.set("dst", Json::uinteger(p.dst));
    jp.set("ok", Json::boolean(p.ok));
    Json hops = Json::array();
    for (const auto& h : p.hops) {
      Json jh = Json::array();
      jh.push_back(Json::string(h.label));
      jh.push_back(Json::string(kind_tag(h.kind)));
      jh.push_back(Json::integer(h.asn));
      jh.push_back(Json::integer(
          h.router.valid() ? static_cast<long long>(h.router.value()) : -1));
      hops.push_back(std::move(jh));
    }
    jp.set("hops", std::move(hops));
    Json links = Json::array();
    for (topo::LinkId l : p.links) links.push_back(Json::uinteger(l.value()));
    jp.set("links", std::move(links));
    paths.push_back(std::move(jp));
  }
  Json j = Json::object();
  j.set("paths", std::move(paths));
  return j;
}

std::optional<probe::Mesh> mesh_from_json(const Json& j, std::string* error) {
  if (!j.is_object()) {
    set_error(error, "mesh must be an object");
    return std::nullopt;
  }
  const Json* paths = require(j, "paths", Json::Type::kArray, error);
  if (paths == nullptr) return std::nullopt;
  probe::Mesh mesh;
  mesh.paths.reserve(paths->size());
  for (std::size_t i = 0; i < paths->size(); ++i) {
    const Json& jp = (*paths)[i];
    if (!jp.is_object()) {
      set_error(error, "mesh path " + std::to_string(i) + " must be an object");
      return std::nullopt;
    }
    probe::TracePath p;
    const auto src = require_uint(jp, "src", error);
    const auto dst = require_uint(jp, "dst", error);
    const Json* ok = require(jp, "ok", Json::Type::kBool, error);
    const Json* hops = require(jp, "hops", Json::Type::kArray, error);
    const Json* links = require(jp, "links", Json::Type::kArray, error);
    if (!src || !dst || ok == nullptr || hops == nullptr || links == nullptr) {
      return std::nullopt;
    }
    p.src = *src;
    p.dst = *dst;
    p.ok = ok->as_bool();
    p.hops.reserve(hops->size());
    for (std::size_t k = 0; k < hops->size(); ++k) {
      const Json& jh = (*hops)[k];
      if (!jh.is_array() || jh.size() != 4 || !jh[0].is_string() ||
          !jh[1].is_string() || !jh[2].is_number() || !jh[3].is_number()) {
        set_error(error, "mesh hop must be [label, kind, asn, router]");
        return std::nullopt;
      }
      probe::Hop h;
      h.label = jh[0].as_string();
      const auto kind = kind_from_tag(jh[1].as_string());
      if (!kind) {
        set_error(error, "unknown hop kind '" + jh[1].as_string() + "'");
        return std::nullopt;
      }
      h.kind = *kind;
      h.asn = static_cast<int>(jh[2].as_int());
      const long long router = jh[3].as_int();
      if (router >= 0) h.router = topo::RouterId{static_cast<std::uint32_t>(router)};
      p.hops.push_back(std::move(h));
    }
    p.links.reserve(links->size());
    for (std::size_t k = 0; k < links->size(); ++k) {
      if (!(*links)[k].is_number() || (*links)[k].as_int() < 0) {
        set_error(error, "mesh link ids must be non-negative numbers");
        return std::nullopt;
      }
      p.links.push_back(
          topo::LinkId{static_cast<std::uint32_t>((*links)[k].as_int())});
    }
    mesh.paths.push_back(std::move(p));
  }
  return mesh;
}

Json cp_to_json(const core::ControlPlaneObs& cp) {
  Json igp = Json::array();
  for (const auto& k : cp.igp_down_keys) igp.push_back(Json::string(k));
  Json wd = Json::array();
  for (const auto& w : cp.withdrawals) {
    Json jw = Json::array();
    jw.push_back(Json::string(w.directed_key));
    jw.push_back(Json::integer(w.dest_asn));
    wd.push_back(std::move(jw));
  }
  Json j = Json::object();
  j.set("igp", std::move(igp));
  j.set("wd", std::move(wd));
  return j;
}

std::optional<core::ControlPlaneObs> cp_from_json(const Json& j,
                                                  std::string* error) {
  if (!j.is_object()) {
    set_error(error, "cp must be an object");
    return std::nullopt;
  }
  const Json* igp = require(j, "igp", Json::Type::kArray, error);
  const Json* wd = require(j, "wd", Json::Type::kArray, error);
  if (igp == nullptr || wd == nullptr) return std::nullopt;
  core::ControlPlaneObs cp;
  cp.igp_down_keys.reserve(igp->size());
  for (std::size_t i = 0; i < igp->size(); ++i) {
    if (!(*igp)[i].is_string()) {
      set_error(error, "cp.igp entries must be strings");
      return std::nullopt;
    }
    cp.igp_down_keys.push_back((*igp)[i].as_string());
  }
  cp.withdrawals.reserve(wd->size());
  for (std::size_t i = 0; i < wd->size(); ++i) {
    const Json& jw = (*wd)[i];
    if (!jw.is_array() || jw.size() != 2 || !jw[0].is_string() ||
        !jw[1].is_number()) {
      set_error(error, "cp.wd entries must be [directed_key, dest_asn]");
      return std::nullopt;
    }
    cp.withdrawals.push_back(core::ControlPlaneObs::Withdrawal{
        jw[0].as_string(), static_cast<int>(jw[1].as_int())});
  }
  return cp;
}

Json session_config_to_json(const SessionConfig& cfg) {
  Json j = Json::object();
  j.set("threshold", Json::uinteger(cfg.alarm_threshold));
  j.set("algo", Json::string(cfg.algo));
  j.set("granularity", Json::string(cfg.granularity));
  return j;
}

std::optional<SessionConfig> session_config_from_json(const Json& j,
                                                      std::string* error) {
  if (!j.is_object()) {
    set_error(error, "config must be an object");
    return std::nullopt;
  }
  const auto threshold = require_uint(j, "threshold", error);
  const Json* algo = require(j, "algo", Json::Type::kString, error);
  const Json* gran = require(j, "granularity", Json::Type::kString, error);
  if (!threshold || algo == nullptr || gran == nullptr) return std::nullopt;
  SessionConfig cfg;
  cfg.alarm_threshold = *threshold;
  cfg.algo = algo->as_string();
  cfg.granularity = gran->as_string();
  // Reject unknown names at the protocol boundary, not at first use.
  if (!cfg.resolve(error)) return std::nullopt;
  return cfg;
}

Json trace_to_json(const obs::TraceContext& trace) {
  Json j = Json::object();
  j.set("tid", Json::string(obs::format_trace_id(trace.trace_id)));
  j.set("sid", Json::string(obs::format_trace_id(trace.span_id)));
  return j;
}

bool trace_from_json(const Json& obj, std::optional<obs::TraceContext>* out,
                     std::string* error) {
  const Json* t = obj.find("trace");
  if (t == nullptr) return true;
  if (!t->is_object()) {
    set_error(error, "trace must be an object");
    return false;
  }
  const Json* tid = require(*t, "tid", Json::Type::kString, error);
  const Json* sid = require(*t, "sid", Json::Type::kString, error);
  if (tid == nullptr || sid == nullptr) return false;
  obs::TraceContext ctx;
  if (!obs::parse_trace_id(tid->as_string(), &ctx.trace_id) ||
      !obs::parse_trace_id(sid->as_string(), &ctx.span_id)) {
    set_error(error, "trace ids must be hex strings");
    return false;
  }
  *out = ctx;
  return true;
}

// ---------------------------------------------------------------------------
// Requests.

namespace {

Json frame_header() {
  Json j = Json::object();
  j.set("v", Json::integer(kProtocolVersion));
  return j;
}

}  // namespace

std::string serialize(const Request& req) {
  Json j = frame_header();
  std::visit(
      [&j](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, HelloRequest>) {
          j.set("op", Json::string("hello"));
          j.set("session", Json::string(r.session));
          j.set("config", session_config_to_json(r.config));
          if (r.trace.has_value()) j.set("trace", trace_to_json(*r.trace));
        } else if constexpr (std::is_same_v<T, SetBaselineRequest>) {
          j.set("op", Json::string("set_baseline"));
          j.set("session", Json::string(r.session));
          j.set("mesh", mesh_to_json(r.mesh));
          if (r.trace.has_value()) j.set("trace", trace_to_json(*r.trace));
        } else if constexpr (std::is_same_v<T, ObserveRequest>) {
          j.set("op", Json::string("observe"));
          j.set("session", Json::string(r.session));
          j.set("mesh", mesh_to_json(r.mesh));
          if (r.cp.has_value()) j.set("cp", cp_to_json(*r.cp));
          if (r.seq.has_value()) j.set("seq", Json::uinteger(*r.seq));
          if (r.trace.has_value()) j.set("trace", trace_to_json(*r.trace));
        } else if constexpr (std::is_same_v<T, ObserveBatchRequest>) {
          j.set("op", Json::string("observe_batch"));
          j.set("session", Json::string(r.session));
          j.set("src", Json::string(r.src));
          Json items = Json::array();
          for (const auto& item : r.items) {
            Json ji = Json::object();
            ji.set("seq", Json::uinteger(item.seq));
            ji.set("mesh", mesh_to_json(item.mesh));
            if (item.cp.has_value()) ji.set("cp", cp_to_json(*item.cp));
            if (item.trace.has_value()) {
              ji.set("trace", trace_to_json(*item.trace));
            }
            items.push_back(std::move(ji));
          }
          j.set("items", std::move(items));
          if (r.trace.has_value()) j.set("trace", trace_to_json(*r.trace));
        } else if constexpr (std::is_same_v<T, QueryRequest>) {
          j.set("op", Json::string("query"));
          j.set("session", Json::string(r.session));
          if (r.trace.has_value()) j.set("trace", trace_to_json(*r.trace));
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          j.set("op", Json::string("stats"));
        } else if constexpr (std::is_same_v<T, MetricsRequest>) {
          j.set("op", Json::string("metrics"));
        } else if constexpr (std::is_same_v<T, EventsRequest>) {
          j.set("op", Json::string("events"));
          j.set("cursor", Json::uinteger(r.cursor));
          j.set("cap", Json::uinteger(r.cap));
        } else if constexpr (std::is_same_v<T, ShutdownRequest>) {
          j.set("op", Json::string("shutdown"));
        }
      },
      req);
  return j.dump();
}

namespace {

std::optional<Json> parse_frame(std::string_view frame, std::string* error) {
  if (frame.size() > kMaxFrameBytes) {
    set_error(error, "frame exceeds " + std::to_string(kMaxFrameBytes) +
                         " bytes");
    return std::nullopt;
  }
  auto j = Json::parse(frame, error);
  if (!j) return std::nullopt;
  if (!j->is_object()) {
    set_error(error, "frame must be a JSON object");
    return std::nullopt;
  }
  const Json* v = j->find("v");
  if (v == nullptr || !v->is_number() ||
      v->as_int() != kProtocolVersion) {
    set_error(error, "missing or unsupported protocol version");
    return std::nullopt;
  }
  return j;
}

std::optional<std::string> get_session(const Json& j, std::string* error) {
  const Json* s = require(j, "session", Json::Type::kString, error);
  if (s == nullptr) return std::nullopt;
  if (s->as_string().empty()) {
    set_error(error, "session name must not be empty");
    return std::nullopt;
  }
  return s->as_string();
}

}  // namespace

std::optional<Request> parse_request(std::string_view frame,
                                     std::string* error) {
  const auto j = parse_frame(frame, error);
  if (!j) return std::nullopt;
  const Json* op = require(*j, "op", Json::Type::kString, error);
  if (op == nullptr) return std::nullopt;
  const std::string& name = op->as_string();

  if (name == "hello") {
    const auto session = get_session(*j, error);
    const Json* cfg = require(*j, "config", Json::Type::kObject, error);
    if (!session || cfg == nullptr) return std::nullopt;
    const auto config = session_config_from_json(*cfg, error);
    if (!config) return std::nullopt;
    HelloRequest req{*session, *config, std::nullopt};
    if (!trace_from_json(*j, &req.trace, error)) return std::nullopt;
    return Request{std::move(req)};
  }
  if (name == "set_baseline") {
    const auto session = get_session(*j, error);
    const Json* mesh = require(*j, "mesh", Json::Type::kObject, error);
    if (!session || mesh == nullptr) return std::nullopt;
    auto m = mesh_from_json(*mesh, error);
    if (!m) return std::nullopt;
    SetBaselineRequest req{*session, std::move(*m), std::nullopt};
    if (!trace_from_json(*j, &req.trace, error)) return std::nullopt;
    return Request{std::move(req)};
  }
  if (name == "observe") {
    const auto session = get_session(*j, error);
    const Json* mesh = require(*j, "mesh", Json::Type::kObject, error);
    if (!session || mesh == nullptr) return std::nullopt;
    auto m = mesh_from_json(*mesh, error);
    if (!m) return std::nullopt;
    ObserveRequest req{*session, std::move(*m), std::nullopt, std::nullopt};
    if (const Json* cp = j->find("cp"); cp != nullptr) {
      auto obs = cp_from_json(*cp, error);
      if (!obs) return std::nullopt;
      req.cp = std::move(*obs);
    }
    if (j->find("seq") != nullptr) {
      const auto seq = require_uint(*j, "seq", error);
      if (!seq) return std::nullopt;
      req.seq = static_cast<std::uint64_t>(*seq);
    }
    if (!trace_from_json(*j, &req.trace, error)) return std::nullopt;
    return Request{std::move(req)};
  }
  if (name == "observe_batch") {
    const auto session = get_session(*j, error);
    const Json* src = require(*j, "src", Json::Type::kString, error);
    const Json* items = require(*j, "items", Json::Type::kArray, error);
    if (!session || src == nullptr || items == nullptr) return std::nullopt;
    if (src->as_string().empty()) {
      set_error(error, "src must not be empty");
      return std::nullopt;
    }
    ObserveBatchRequest req;
    req.session = *session;
    req.src = src->as_string();
    req.items.reserve(items->size());
    std::uint64_t prev_seq = 0;
    for (std::size_t i = 0; i < items->size(); ++i) {
      const Json& ji = (*items)[i];
      if (!ji.is_object()) {
        set_error(error, "batch item " + std::to_string(i) +
                             " must be an object");
        return std::nullopt;
      }
      ObserveItem item;
      const auto seq = require_uint(ji, "seq", error);
      const Json* mesh = require(ji, "mesh", Json::Type::kObject, error);
      if (!seq || mesh == nullptr) return std::nullopt;
      item.seq = static_cast<std::uint64_t>(*seq);
      // Strictly increasing seqs are the dedup contract; enforcing it at
      // the protocol boundary keeps the server's watermark logic trivial.
      if (item.seq == 0 || item.seq <= prev_seq) {
        set_error(error, "batch item seqs must be strictly increasing");
        return std::nullopt;
      }
      prev_seq = item.seq;
      auto m = mesh_from_json(*mesh, error);
      if (!m) return std::nullopt;
      item.mesh = std::move(*m);
      if (const Json* cp = ji.find("cp"); cp != nullptr) {
        auto obs = cp_from_json(*cp, error);
        if (!obs) return std::nullopt;
        item.cp = std::move(*obs);
      }
      if (!trace_from_json(ji, &item.trace, error)) return std::nullopt;
      req.items.push_back(std::move(item));
    }
    if (!trace_from_json(*j, &req.trace, error)) return std::nullopt;
    return Request{std::move(req)};
  }
  if (name == "query") {
    const auto session = get_session(*j, error);
    if (!session) return std::nullopt;
    QueryRequest req{*session, std::nullopt};
    if (!trace_from_json(*j, &req.trace, error)) return std::nullopt;
    return Request{std::move(req)};
  }
  if (name == "stats") return Request{StatsRequest{}};
  if (name == "metrics") return Request{MetricsRequest{}};
  if (name == "events") {
    const auto cursor = require_uint(*j, "cursor", error);
    const auto cap = require_uint(*j, "cap", error);
    if (!cursor || !cap) return std::nullopt;
    EventsRequest req;
    req.cursor = static_cast<std::uint64_t>(*cursor);
    req.cap = static_cast<std::uint64_t>(*cap);
    return Request{req};
  }
  if (name == "shutdown") return Request{ShutdownRequest{}};
  set_error(error, "unknown op '" + name + "'");
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Responses.

std::string serialize(const Response& rsp) {
  Json j = frame_header();
  std::visit(
      [&j](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, ErrorResponse>) {
          j.set("ok", Json::boolean(false));
          j.set("error", Json::string(r.message));
          if (!r.code.empty()) j.set("code", Json::string(r.code));
          if (r.retry_after_ms.has_value()) {
            j.set("retry_after_ms", Json::uinteger(*r.retry_after_ms));
          }
        } else if constexpr (std::is_same_v<T, HelloResponse>) {
          j.set("ok", Json::boolean(true));
          j.set("op", Json::string("hello"));
          j.set("session", Json::string(r.session));
          j.set("created", Json::boolean(r.created));
          j.set("config", session_config_to_json(r.config));
          if (r.epoch != 0) j.set("epoch", Json::uinteger(r.epoch));
        } else if constexpr (std::is_same_v<T, SetBaselineResponse>) {
          j.set("ok", Json::boolean(true));
          j.set("op", Json::string("set_baseline"));
          j.set("pairs", Json::uinteger(r.pairs));
        } else if constexpr (std::is_same_v<T, ObserveResponse>) {
          j.set("ok", Json::boolean(true));
          j.set("op", Json::string("observe"));
          j.set("round", Json::uinteger(r.round));
          j.set("alarmed", Json::boolean(r.alarmed));
          if (r.diagnosis.has_value()) {
            j.set("diagnosis", Json::raw(*r.diagnosis));
          }
        } else if constexpr (std::is_same_v<T, ObserveBatchResponse>) {
          j.set("ok", Json::boolean(true));
          j.set("op", Json::string("observe_batch"));
          j.set("ack", Json::uinteger(r.ack));
          j.set("applied", Json::uinteger(r.applied));
          j.set("deduped", Json::uinteger(r.deduped));
          j.set("round", Json::uinteger(r.round));
          j.set("alarmed", Json::boolean(r.alarmed));
          if (r.diagnosis.has_value()) {
            j.set("diagnosis", Json::raw(*r.diagnosis));
          }
        } else if constexpr (std::is_same_v<T, QueryResponse>) {
          j.set("ok", Json::boolean(true));
          j.set("op", Json::string("query"));
          j.set("round", Json::uinteger(r.round));
          if (r.diagnosis.has_value()) {
            j.set("diagnosis", Json::raw(*r.diagnosis));
          }
        } else if constexpr (std::is_same_v<T, StatsResponse>) {
          j.set("ok", Json::boolean(true));
          j.set("op", Json::string("stats"));
          j.set("stats", Json::raw(r.stats));
        } else if constexpr (std::is_same_v<T, MetricsResponse>) {
          j.set("ok", Json::boolean(true));
          j.set("op", Json::string("metrics"));
          j.set("text", Json::string(r.text));
        } else if constexpr (std::is_same_v<T, EventsResponse>) {
          j.set("ok", Json::boolean(true));
          j.set("op", Json::string("events"));
          j.set("next_cursor", Json::uinteger(r.next_cursor));
          Json evs = Json::array();
          for (const auto& ev : r.events) {
            Json je = Json::object();
            je.set("seq", Json::uinteger(ev.seq));
            je.set("t_ms", Json::uinteger(ev.t_ms));
            je.set("kind", Json::string(obs::event_kind_name(ev.kind)));
            je.set("detail", Json::string(ev.detail));
            if (ev.trace_id != 0) {
              je.set("trace",
                     Json::string(obs::format_trace_id(ev.trace_id)));
            }
            if (ev.dur_us != 0) je.set("dur_us", Json::uinteger(ev.dur_us));
            evs.push_back(std::move(je));
          }
          j.set("events", std::move(evs));
        } else if constexpr (std::is_same_v<T, ShutdownResponse>) {
          j.set("ok", Json::boolean(true));
          j.set("op", Json::string("shutdown"));
        }
      },
      rsp);
  return j.dump();
}

std::optional<Response> parse_response(std::string_view frame,
                                       std::string* error) {
  const auto j = parse_frame(frame, error);
  if (!j) return std::nullopt;
  const Json* ok = require(*j, "ok", Json::Type::kBool, error);
  if (ok == nullptr) return std::nullopt;
  if (!ok->as_bool()) {
    const Json* msg = require(*j, "error", Json::Type::kString, error);
    if (msg == nullptr) return std::nullopt;
    ErrorResponse err{msg->as_string(), "", std::nullopt};
    if (const Json* code = j->find("code"); code != nullptr) {
      if (!code->is_string()) {
        set_error(error, "error code must be a string");
        return std::nullopt;
      }
      err.code = code->as_string();
    }
    if (j->find("retry_after_ms") != nullptr) {
      const auto after = require_uint(*j, "retry_after_ms", error);
      if (!after) return std::nullopt;
      err.retry_after_ms = static_cast<std::uint64_t>(*after);
    }
    return Response{std::move(err)};
  }
  const Json* op = require(*j, "op", Json::Type::kString, error);
  if (op == nullptr) return std::nullopt;
  const std::string& name = op->as_string();

  if (name == "hello") {
    const auto session = get_session(*j, error);
    const Json* created = require(*j, "created", Json::Type::kBool, error);
    const Json* cfg = require(*j, "config", Json::Type::kObject, error);
    if (!session || created == nullptr || cfg == nullptr) return std::nullopt;
    const auto config = session_config_from_json(*cfg, error);
    if (!config) return std::nullopt;
    HelloResponse rsp{*session, created->as_bool(), *config};
    if (j->find("epoch") != nullptr) {
      const auto epoch = require_uint(*j, "epoch", error);
      if (!epoch) return std::nullopt;
      rsp.epoch = static_cast<std::uint64_t>(*epoch);
    }
    return Response{std::move(rsp)};
  }
  if (name == "set_baseline") {
    const auto pairs = require_uint(*j, "pairs", error);
    if (!pairs) return std::nullopt;
    return Response{SetBaselineResponse{*pairs}};
  }
  if (name == "observe") {
    const auto round = require_uint(*j, "round", error);
    const Json* alarmed = require(*j, "alarmed", Json::Type::kBool, error);
    if (!round || alarmed == nullptr) return std::nullopt;
    ObserveResponse rsp{*round, alarmed->as_bool(), std::nullopt};
    if (const Json* d = j->find("diagnosis"); d != nullptr) {
      if (!d->is_object()) {
        set_error(error, "diagnosis must be an object");
        return std::nullopt;
      }
      rsp.diagnosis = d->dump();
    }
    return Response{std::move(rsp)};
  }
  if (name == "observe_batch") {
    const auto ack = require_uint(*j, "ack", error);
    const auto applied = require_uint(*j, "applied", error);
    const auto deduped = require_uint(*j, "deduped", error);
    const auto round = require_uint(*j, "round", error);
    const Json* alarmed = require(*j, "alarmed", Json::Type::kBool, error);
    if (!ack || !applied || !deduped || !round || alarmed == nullptr) {
      return std::nullopt;
    }
    ObserveBatchResponse rsp;
    rsp.ack = static_cast<std::uint64_t>(*ack);
    rsp.applied = *applied;
    rsp.deduped = *deduped;
    rsp.round = *round;
    rsp.alarmed = alarmed->as_bool();
    if (const Json* d = j->find("diagnosis"); d != nullptr) {
      if (!d->is_object()) {
        set_error(error, "diagnosis must be an object");
        return std::nullopt;
      }
      rsp.diagnosis = d->dump();
    }
    return Response{std::move(rsp)};
  }
  if (name == "query") {
    const auto round = require_uint(*j, "round", error);
    if (!round) return std::nullopt;
    QueryResponse rsp{*round, std::nullopt};
    if (const Json* d = j->find("diagnosis"); d != nullptr) {
      if (!d->is_object()) {
        set_error(error, "diagnosis must be an object");
        return std::nullopt;
      }
      rsp.diagnosis = d->dump();
    }
    return Response{std::move(rsp)};
  }
  if (name == "stats") {
    const Json* stats = require(*j, "stats", Json::Type::kObject, error);
    if (stats == nullptr) return std::nullopt;
    return Response{StatsResponse{stats->dump()}};
  }
  if (name == "metrics") {
    const Json* text = require(*j, "text", Json::Type::kString, error);
    if (text == nullptr) return std::nullopt;
    return Response{MetricsResponse{text->as_string()}};
  }
  if (name == "events") {
    const auto next = require_uint(*j, "next_cursor", error);
    const Json* evs = require(*j, "events", Json::Type::kArray, error);
    if (!next || evs == nullptr) return std::nullopt;
    EventsResponse rsp;
    rsp.next_cursor = static_cast<std::uint64_t>(*next);
    rsp.events.reserve(evs->size());
    for (std::size_t i = 0; i < evs->size(); ++i) {
      const Json& je = (*evs)[i];
      if (!je.is_object()) {
        set_error(error, "event " + std::to_string(i) + " must be an object");
        return std::nullopt;
      }
      obs::Event ev;
      const auto seq = require_uint(je, "seq", error);
      const auto t_ms = require_uint(je, "t_ms", error);
      const Json* kind = require(je, "kind", Json::Type::kString, error);
      const Json* detail = require(je, "detail", Json::Type::kString, error);
      if (!seq || !t_ms || kind == nullptr || detail == nullptr) {
        return std::nullopt;
      }
      ev.seq = static_cast<std::uint64_t>(*seq);
      ev.t_ms = static_cast<std::uint64_t>(*t_ms);
      if (!obs::parse_event_kind(kind->as_string(), &ev.kind)) {
        set_error(error, "unknown event kind '" + kind->as_string() + "'");
        return std::nullopt;
      }
      ev.detail = detail->as_string();
      if (const Json* trace = je.find("trace"); trace != nullptr) {
        if (!trace->is_string() ||
            !obs::parse_trace_id(trace->as_string(), &ev.trace_id)) {
          set_error(error, "event trace must be a hex-string id");
          return std::nullopt;
        }
      }
      if (je.find("dur_us") != nullptr) {
        const auto dur = require_uint(je, "dur_us", error);
        if (!dur) return std::nullopt;
        ev.dur_us = static_cast<std::uint64_t>(*dur);
      }
      rsp.events.push_back(std::move(ev));
    }
    return Response{std::move(rsp)};
  }
  if (name == "shutdown") return Response{ShutdownResponse{}};
  set_error(error, "unknown op '" + name + "'");
  return std::nullopt;
}

}  // namespace netd::svc
