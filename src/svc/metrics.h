// Request/latency accounting for the diagnosis service, surfaced by the
// protocol's `stats` verb.
//
// One util::Histogram per op keeps latency percentiles in fixed memory
// (the server is long-lived; a sample-keeping Summary would grow without
// bound). The server serializes access with its own mutex; this type is
// plain data plus formatting.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "svc/fault.h"
#include "svc/json.h"
#include "util/stats.h"

namespace netd::svc {

struct ServiceMetrics {
  struct PerOp {
    std::uint64_t count = 0;
    std::uint64_t errors = 0;
    /// Wall-clock request handling time in microseconds.
    util::Histogram latency_us;
    /// Trace id of the most recent traced request for this op (0 = none
    /// seen); rendered as an exemplar on the Prometheus families so a
    /// dashboard spike links straight to one concrete trace.
    std::uint64_t exemplar_trace_id = 0;
  };

  /// Keyed by op name; ordered so stats output is stable.
  std::map<std::string, PerOp> ops;
  std::uint64_t connections = 0;        ///< accepted connections, lifetime
  std::uint64_t sessions_created = 0;
  std::uint64_t malformed_frames = 0;   ///< frames that failed to parse
  std::uint64_t oversized_frames = 0;   ///< frames over the size cap
  std::uint64_t disconnects_mid_request = 0;
  std::uint64_t idle_timeouts = 0;      ///< connections cut by the idle deadline
  std::uint64_t shed_requests = 0;      ///< refused with `overloaded`
  std::uint64_t dedup_hits = 0;         ///< retried observes answered from cache
  /// Watchdog-quarantined trials in the campaign this server fronts
  /// (mirrored from the campaign checkpoint; 0 when none is attached).
  std::uint64_t quarantined_trials = 0;
  /// Faults the server's own injector fired (chaos runs; all zero in
  /// production).
  FaultCounters faults;

  void record(const std::string& op, bool ok, double latency_us,
              std::uint64_t trace_id = 0);

  /// {"connections":N,...,"faults":{...},"ops":{"observe":{"count":n,
  ///   "errors":e,"lat_us":{"p50":..,"p90":..,"p99":..,"max":..}},...}}
  /// This rendering is pinned byte-for-byte by a golden test — the stats
  /// verb's document must not drift across releases.
  [[nodiscard]] Json to_json() const;

  /// The same numbers as obs samples ("netd_svc_*"), the bridge that lets
  /// the Prometheus `metrics` verb expose a server's ServiceMetrics next
  /// to the registry instruments: lifetime counters, per-op
  /// count/error/latency series labeled {op="..."}, fault counters
  /// labeled {kind="..."}.
  [[nodiscard]] std::vector<obs::Sample> to_samples() const;
};

}  // namespace netd::svc
