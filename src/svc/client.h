// Blocking protocol client used by `netdiag submit`, `netdiag replay`
// and the tests: one connection, strict request/response lockstep.
//
// With Options the client is resilient: connect and per-request deadlines
// bound every blocking step, transport failures trigger automatic
// reconnect with exponential backoff and deterministic (seeded) jitter,
// and retries are safe — observe requests carry a per-session sequence
// number the server deduplicates, so a round whose response was lost on
// the wire is re-answered from cache instead of being fed twice. The
// structured transient errors are honored too: `bad_frame` is resent on
// the intact stream and `overloaded` waits the server's retry_after_ms.
// The zero-argument Options (no retries, no deadlines) behaves exactly
// like the pre-robustness client.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "svc/fault.h"
#include "svc/protocol.h"
#include "svc/socket.h"
#include "util/rng.h"

namespace netd::svc {

class Client {
 public:
  /// What kind of failure the last failed call()/connect() hit. The
  /// distinction matters operationally: kConnectRefused means the server
  /// is down or unreachable (spool and wait), while kClosedMidFrame means
  /// the server accepted the request and died mid-exchange — the request
  /// may or may not have been applied, so the caller must redeliver
  /// idempotently (seq dedup) rather than assume loss.
  enum class ErrorKind {
    kNone,           ///< last call succeeded (or none made yet)
    kConnectRefused, ///< no connection could be established
    kClosedMidFrame, ///< connection dropped between request and response
    kTimeout,        ///< deadline expired waiting for the response
    kProtocol,       ///< response arrived but did not parse / oversized
  };

  struct Options {
    /// Deadline for one connect attempt, ms (< 0 = block forever).
    int connect_timeout_ms = -1;
    /// Deadline for one request+response exchange, ms (< 0 = forever).
    int request_timeout_ms = -1;
    /// Extra attempts after the first; 0 = fail fast (legacy behavior).
    std::size_t max_retries = 0;
    int backoff_base_ms = 10;
    int backoff_max_ms = 1000;
    /// Seeds the jitter stream and makes retry schedules reproducible.
    std::uint64_t seed = 1;
    /// Chaos: faults injected on this client's own request frames.
    FaultPlan fault_plan;
  };

  /// Connects; std::nullopt (with `error`) when the endpoint is
  /// unreachable (after opts.max_retries reconnect attempts, if any).
  [[nodiscard]] static std::optional<Client> connect(const Endpoint& ep,
                                                     std::string* error);
  [[nodiscard]] static std::optional<Client> connect(const Endpoint& ep,
                                                     const Options& opts,
                                                     std::string* error);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Sends one request and blocks for its response. ErrorResponse carries
  /// server-side failures; transport failures (disconnect, unparseable
  /// response, deadline) come back as std::nullopt with `error` set —
  /// after the configured retries, each on a fresh connection, have been
  /// exhausted. A retried observe reuses its sequence number, so the
  /// server applies the round at most once.
  [[nodiscard]] std::optional<Response> call(const Request& req,
                                             std::string* error);

  /// Raw frame escape hatch for torture tests: writes `frame` + '\n'
  /// verbatim and reads one response line. Never retries.
  [[nodiscard]] std::optional<std::string> call_raw(const std::string& frame,
                                                    std::string* error);

  /// Tears down the connection. With retries configured a later call()
  /// transparently reconnects; otherwise subsequent calls fail.
  void close();

  /// Faults this client's own injector fired (chaos runs).
  [[nodiscard]] FaultCounters fault_counters() const;

  /// Classifies the most recent failure; kNone after a success. Reset at
  /// the start of every call()/call_raw()/connect attempt.
  [[nodiscard]] ErrorKind last_error_kind() const { return last_error_kind_; }

 private:
  Client(const Endpoint& ep, const Options& opts, Fd fd);

  [[nodiscard]] bool ensure_connected(std::string* error);
  void backoff(std::size_t attempt);
  /// One exchange on the current connection. Sets *transport when the
  /// failure poisoned the stream (reconnect required before retrying).
  [[nodiscard]] std::optional<Response> exchange(const std::string& frame,
                                                 std::string* error,
                                                 bool* transport);

  Endpoint ep_;
  Options opts_;
  Fd fd_;
  std::optional<LineReader> reader_;
  util::Rng rng_;
  std::uint64_t next_seq_ = 1;
  ErrorKind last_error_kind_ = ErrorKind::kNone;
  /// unique_ptr: the injector owns a mutex and must stay movable with us.
  std::unique_ptr<FaultInjector> injector_;
};

/// One-line convenience: true when `call` returned the non-error response
/// alternative `T`, which is then copied to `out`.
template <typename T>
[[nodiscard]] bool expect_response(std::optional<Response> rsp, T* out,
                                   std::string* error) {
  if (!rsp.has_value()) return false;
  if (const auto* err = std::get_if<ErrorResponse>(&*rsp)) {
    if (error != nullptr && error->empty()) *error = err->message;
    return false;
  }
  if (const auto* typed = std::get_if<T>(&*rsp)) {
    if (out != nullptr) *out = *typed;
    return true;
  }
  if (error != nullptr && error->empty()) *error = "unexpected response type";
  return false;
}

}  // namespace netd::svc
