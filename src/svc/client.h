// Blocking protocol client used by `netdiag submit`, `netdiag replay`
// and the tests: one connection, strict request/response lockstep.
#pragma once

#include <optional>
#include <string>

#include "svc/protocol.h"
#include "svc/socket.h"

namespace netd::svc {

class Client {
 public:
  /// Connects; std::nullopt (with `error`) when the endpoint is
  /// unreachable.
  [[nodiscard]] static std::optional<Client> connect(const Endpoint& ep,
                                                     std::string* error);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Sends one request and blocks for its response. ErrorResponse carries
  /// server-side failures; transport failures (disconnect, unparseable
  /// response) come back as std::nullopt with `error` set.
  [[nodiscard]] std::optional<Response> call(const Request& req,
                                             std::string* error);

  /// Raw frame escape hatch for torture tests: writes `frame` + '\n'
  /// verbatim and reads one response line.
  [[nodiscard]] std::optional<std::string> call_raw(const std::string& frame,
                                                    std::string* error);

  /// Tears down the connection (subsequent calls fail).
  void close();

 private:
  explicit Client(Fd fd);

  Fd fd_;
  LineReader reader_;
};

/// One-line convenience: true when `call` returned the non-error response
/// alternative `T`, which is then copied to `out`.
template <typename T>
[[nodiscard]] bool expect_response(std::optional<Response> rsp, T* out,
                                   std::string* error) {
  if (!rsp.has_value()) return false;
  if (const auto* err = std::get_if<ErrorResponse>(&*rsp)) {
    if (error != nullptr && error->empty()) *error = err->message;
    return false;
  }
  if (const auto* typed = std::get_if<T>(&*rsp)) {
    if (out != nullptr) *out = *typed;
    return true;
  }
  if (error != nullptr && error->empty()) *error = "unexpected response type";
  return false;
}

}  // namespace netd::svc
