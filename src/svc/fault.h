// Deterministic fault injection for the service wire: the chaos harness
// the robustness layer is tested against.
//
// A FaultPlan is a seeded schedule over outgoing frames. For every frame
// the injector draws from a util::Rng (mt19937_64 seeded by the plan), so
// the same plan applied to the same frame sequence injects the identical
// faults — chaos soaks are replayable bit-for-bit from one seed. Faults
// model what real networks and peers do to a diagnosis service:
//
//   delay       the frame is held back before being written
//   drop        the connection dies before the frame is written (FIN)
//   truncate    a prefix of the frame is written, then the stream ends
//   corrupt     one byte is overwritten with 0x01 — an unescaped control
//               character no valid frame contains, so the receiver's JSON
//               parser always rejects the mangled frame (the fault is
//               detectable, never a silent diagnosis change)
//   reset       a prefix is written and the connection is marked for an
//               abortive close (RST via SO_LINGER 0)
//
// At most one destructive fault fires per frame. The injector only
// decides and writes; the fd's owner still closes it, which is when
// drop/truncate/reset become visible to the peer.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "svc/json.h"
#include "util/rng.h"

namespace netd::svc {

/// Seeded per-frame fault schedule. All probabilities are independent
/// per frame; enabled() is false for the default (all-zero) plan, which
/// makes the wrapper a pass-through.
struct FaultPlan {
  std::uint64_t seed = 1;
  double delay_prob = 0.0;
  int delay_ms = 0;
  double drop_prob = 0.0;
  double truncate_prob = 0.0;
  double corrupt_prob = 0.0;
  double reset_prob = 0.0;

  [[nodiscard]] bool enabled() const {
    return delay_prob > 0 || drop_prob > 0 || truncate_prob > 0 ||
           corrupt_prob > 0 || reset_prob > 0;
  }

  /// The canonical soak mix: every fault kind armed, aggressive enough to
  /// fire many times per replay yet survivable with a handful of retries.
  [[nodiscard]] static FaultPlan chaos(std::uint64_t seed);
};

/// Counters for every fault the injector fired, surfaced through the
/// `stats` verb (server side) or Client::fault_counters() (client side).
struct FaultCounters {
  std::uint64_t delays = 0;
  std::uint64_t drops = 0;
  std::uint64_t truncations = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t resets = 0;

  [[nodiscard]] std::uint64_t total() const {
    return delays + drops + truncations + corruptions + resets;
  }
  [[nodiscard]] Json to_json() const;
};

/// Applies a FaultPlan to outgoing frames on a socket. Thread-safe: one
/// injector may serve every connection of a server (the draw order then
/// depends on scheduling, but single-connection soaks stay deterministic).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  /// Writes `frame` (which must include its trailing '\n'), applying at
  /// most one fault. Returns false when the connection was deliberately
  /// killed (drop/truncate/reset) or the write itself failed; the caller
  /// must close the fd, at which point the peer observes the fault.
  [[nodiscard]] bool write_frame(int fd, std::string frame,
                                 int timeout_ms = -1);

  [[nodiscard]] FaultCounters counters() const;

 private:
  enum class Action { kPass, kDelay, kDrop, kTruncate, kCorrupt, kReset };
  [[nodiscard]] Action draw(const std::string& frame, std::size_t* cut,
                            std::size_t* byte);

  mutable std::mutex mu_;
  FaultPlan plan_;
  util::Rng rng_;
  FaultCounters counts_;
};

}  // namespace netd::svc
