#include "svc/json.h"

#include <cstdlib>
#include <sstream>

#include "core/json_export.h"

namespace netd::svc {

Json Json::null() { return Json(); }

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  if (v == static_cast<double>(static_cast<long long>(v))) {
    j.str_ = std::to_string(static_cast<long long>(v));
  } else {
    std::ostringstream ss;
    ss << v;
    j.str_ = ss.str();
  }
  return j;
}

Json Json::integer(long long v) {
  Json j;
  j.type_ = Type::kNumber;
  j.str_ = std::to_string(v);
  return j;
}

Json Json::uinteger(unsigned long long v) {
  Json j;
  j.type_ = Type::kNumber;
  j.str_ = std::to_string(v);
  return j;
}

Json Json::number_from_lexeme(std::string lexeme) {
  Json j;
  j.type_ = Type::kNumber;
  j.str_ = std::move(lexeme);
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json Json::raw(std::string raw) {
  Json j;
  j.type_ = Type::kObject;  // callers splice objects; type is advisory
  j.raw_ = true;
  j.str_ = std::move(raw);
  return j;
}

double Json::as_double() const { return std::strtod(str_.c_str(), nullptr); }

long long Json::as_int() const {
  return std::strtoll(str_.c_str(), nullptr, 10);
}

Json& Json::push_back(Json v) {
  items_.push_back(std::move(v));
  return items_.back();
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(std::string key, Json value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return members_.back().second;
}

void Json::dump_to(std::string& out) const {
  if (raw_) {
    out += str_;
    return;
  }
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      out += str_;
      break;
    case Type::kString:
      out += '"';
      out += core::json_escape(str_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& v : items_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += core::json_escape(k);
        out += "\":";
        v.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> run() {
    skip_ws();
    Json v;
    if (!parse_value(v, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = "offset " + std::to_string(pos_) + ": " + what;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("invalid literal");
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  bool parse_value(Json& out, std::size_t depth) {
    if (eof()) {
      fail("unexpected end of input");
      return false;
    }
    // `depth` is the number of enclosing containers; opening another
    // array/object past kMaxParseDepth is rejected, so containers nest at
    // most kMaxParseDepth levels. Scalars at the limit are fine — only
    // containers recurse.
    if (depth >= Json::kMaxParseDepth && (peek() == '[' || peek() == '{')) {
      fail("nesting too deep");
      return false;
    }
    switch (peek()) {
      case 'n':
        return consume_literal("null") && (out = Json::null(), true);
      case 't':
        return consume_literal("true") && (out = Json::boolean(true), true);
      case 'f':
        return consume_literal("false") && (out = Json::boolean(false), true);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json::string(std::move(s));
        return true;
      }
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return false;
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("bad hex digit in \\u escape");
        return false;
      }
    }
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (eof()) {
        fail("unterminated string");
        return false;
      }
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (eof()) {
        fail("truncated escape");
        return false;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("lone high surrogate");
              return false;
            }
            pos_ += 2;
            unsigned lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail("invalid low surrogate");
              return false;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
            return false;
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          fail("unknown escape");
          return false;
      }
    }
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9') {
      pos_ = start;
      fail("invalid number");
      return false;
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        fail("digit required after decimal point");
        return false;
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        fail("digit required in exponent");
        return false;
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    out = Json::number_from_lexeme(
        std::string(text_.substr(start, pos_ - start)));
    return true;
  }

  bool parse_array(Json& out, std::size_t depth) {
    ++pos_;  // '['
    out = Json::array();
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json v;
      skip_ws();
      if (!parse_value(v, depth + 1)) return false;
      out.push_back(std::move(v));
      skip_ws();
      if (eof()) {
        fail("unterminated array");
        return false;
      }
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
        return false;
      }
    }
  }

  bool parse_object(Json& out, std::size_t depth) {
    ++pos_;  // '{'
    out = Json::object();
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') {
        fail("expected object key");
        return false;
      }
      std::string key;
      if (!parse_string(key)) return false;
      if (out.find(key) != nullptr) {
        fail("duplicate object key '" + key + "'");
        return false;
      }
      skip_ws();
      if (eof() || text_[pos_] != ':') {
        fail("expected ':'");
        return false;
      }
      ++pos_;
      skip_ws();
      Json v;
      if (!parse_value(v, depth + 1)) return false;
      out.set(std::move(key), std::move(v));
      skip_ws();
      if (eof()) {
        fail("unterminated object");
        return false;
      }
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
        return false;
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  if (error != nullptr) error->clear();
  Parser p(text, error);
  return p.run();
}

}  // namespace netd::svc
