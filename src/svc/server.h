// The diagnosis service daemon: accepts protocol connections and drives
// one core::Troubleshooter per named session.
//
// Threading model: a dedicated acceptor thread hands each connection to
// the shared util::ThreadPool; a connection occupies one worker for its
// lifetime (blocking line IO), so `num_threads` bounds the number of
// concurrently served connections — further connections queue in the
// pool. Sessions are create-or-attach by name: any connection may feed or
// query any session, which is what lets a prober fleet share one
// troubleshooter state. Per-session mutexes serialize observation rounds;
// a registry mutex guards the name table; a metrics mutex guards the
// counters. Nothing a peer sends — malformed frames, oversized frames,
// a disconnect mid-request — can take the server down: bad frames earn
// an ErrorResponse (or a teardown of that one connection), never a crash.
//
// Fault tolerance on top of that baseline:
//   - idle deadline: a worker polls instead of blocking; a peer that
//     fails to deliver a complete frame within idle_timeout_ms (stalled,
//     drip-feeding, or simply silent) is disconnected and the worker
//     freed, so slow-loris peers cannot pin the pool.
//   - overload shedding: connections beyond the bounded pending queue
//     and sessions beyond max_sessions earn a structured `overloaded`
//     ErrorResponse carrying retry_after_ms instead of unbounded queueing.
//   - exactly-once observes: a retried observe carrying an already-applied
//     sequence number is answered from the session's response cache.
//   - graceful drain: stop() lets in-flight requests finish (workers
//     notice the stop at their next poll wakeup) before force-closing
//     whatever remains past drain_timeout_ms.
//   - chaos: an optional FaultPlan injects seeded faults into every
//     response written, with counts surfaced through the stats verb.
//   - durability: with a state directory configured, every session
//     mutation is appended to a per-session write-ahead journal (and
//     periodically folded into a snapshot) before the response is sent,
//     so a restarted server recovers every session to byte-identical
//     diagnosis state — including the per-(session, src) ack watermarks
//     that make redelivered batches dedup with zero re-ingest. A corrupt
//     journal is quarantined (never deleted) and that one session falls
//     back to the protocol's amnesia path (unknown_session → re-hello →
//     re-ship); a journal that stops accepting writes degrades the
//     session to ephemeral rather than failing requests.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <optional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "core/troubleshooter.h"
#include "svc/fault.h"
#include "svc/journal.h"
#include "svc/metrics.h"
#include "svc/protocol.h"
#include "svc/socket.h"
#include "util/thread_pool.h"

namespace netd::svc {

class Server {
 public:
  struct Options {
    Endpoint endpoint;
    /// Worker threads (= max concurrently served connections).
    std::size_t num_threads = 8;
    /// Per-frame byte cap (connection is closed when exceeded).
    std::size_t max_frame_bytes = kMaxFrameBytes;
    /// Budget, per connection, for one complete request frame to arrive;
    /// exceeded => the connection is cut and its worker freed. 0 = never.
    int idle_timeout_ms = 0;
    /// Accepted connections allowed to wait for a free worker; beyond
    /// this the acceptor sheds with `overloaded` + retry_after_ms.
    /// 0 = unbounded (legacy behavior).
    std::size_t max_pending = 0;
    /// Cap on concurrently existing sessions; further hellos that would
    /// create one are shed with `overloaded`. 0 = unbounded.
    std::size_t max_sessions = 0;
    /// stop(): how long in-flight requests may finish before their
    /// connections are force-closed.
    int drain_timeout_ms = 2000;
    /// Advertised in `overloaded` responses.
    std::uint64_t retry_after_ms = 100;
    /// Requests slower than this land in the obs::EventRing (tagged with
    /// their trace id) for `netdiag tail`. 0 = no slow-request events.
    int slow_request_ms = 0;
    /// Chaos: seeded faults injected into every response frame written.
    /// Disabled (all probabilities zero) in production.
    FaultPlan fault_plan;
    /// Durability root. Empty = ephemeral server (legacy behavior).
    /// Non-empty: sessions are journaled under <state_dir>/sessions and
    /// recovered on start(); the recovery epoch is advertised in hello.
    std::string state_dir;
    /// When journal appends reach the disk (see FsyncPolicy). kBatch
    /// survives SIGKILL; kAlways additionally survives power loss.
    FsyncPolicy fsync = FsyncPolicy::kBatch;
    /// Journal records between snapshots; bounds replay time on restart.
    std::size_t snapshot_every = 256;
    /// Journal segment rotation threshold, bytes.
    std::uint64_t journal_segment_bytes = 4u << 20;
    /// When set, the stats verb merges this provider's document under a
    /// "campaign" key and mirrors its "quarantined" count into
    /// metrics.quarantined_trials — how a server fronting a checkpointed
    /// experiment campaign surfaces its progress. Called outside the
    /// metrics lock on every stats request; must be thread-safe.
    std::function<Json()> campaign_stats;
  };

  explicit Server(Options opts);
  /// Stops and joins everything still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the acceptor. False (with `error`) when the
  /// endpoint cannot be bound.
  [[nodiscard]] bool start(std::string* error);

  /// Blocks until stop() is called or a client sends `shutdown`.
  void wait();

  /// Idempotent; unblocks wait(), closes the listener and all live
  /// connections, drains the pool.
  void stop();

  /// Endpoint actually bound (TCP port resolved when 0 was requested).
  [[nodiscard]] const Endpoint& endpoint() const { return opts_.endpoint; }

  /// Current metrics as the stats-verb JSON document. The historical
  /// ServiceMetrics fields render byte-identically to previous releases;
  /// `uptime_seconds` and `start_monotonic_ms` (both steady-clock
  /// derived, so replay determinism is unaffected; the name says
  /// monotonic so nobody reads it as a Unix timestamp) are appended
  /// after them.
  [[nodiscard]] std::string stats_json() const;

  /// Current metrics in Prometheus text exposition format: the global
  /// obs registry plus this server's ServiceMetrics (netd_svc_*) and
  /// uptime. Backs the `metrics` verb.
  [[nodiscard]] std::string metrics_prometheus() const;

 private:
  struct Session {
    std::mutex mu;
    SessionConfig config;
    core::Troubleshooter ts;
    std::size_t round = 0;           ///< observation rounds fed so far
    std::size_t diagnosis_round = 0; ///< round of last fired diagnosis
    std::string diagnosis;           ///< last diagnosis document ("" = none)
    /// Exactly-once retry cache: the last applied observe seq and its
    /// response, replayed verbatim when the same seq arrives again.
    std::optional<std::uint64_t> last_seq;
    ObserveResponse last_seq_response;
    /// Batched-ingest ack watermarks, one per shipping agent (`src`):
    /// highest seq applied. Items at or below their source's watermark
    /// are skipped, which is what makes spool redelivery idempotent.
    /// Cleared by set_baseline — a new baseline starts a new epoch, and
    /// an agent that re-ships its baseline re-ships everything after it.
    std::map<std::string, std::uint64_t> src_acks;
    /// Write-ahead journal (guarded by `mu` like the rest of the
    /// session). Null when the server is ephemeral or this session's
    /// journal failed and was degraded to in-memory-only.
    std::unique_ptr<SessionJournal> journal;

    Session(SessionConfig cfg, core::Troubleshooter::Config resolved)
        : config(std::move(cfg)), ts(resolved) {}
  };

  void accept_loop();
  void serve_connection(int fd);
  /// Response write path; routes through the fault injector when chaos
  /// is armed. False = connection must be torn down.
  [[nodiscard]] bool send_frame(int fd, const std::string& line);
  [[nodiscard]] Response dispatch(const Request& req);
  [[nodiscard]] Response overloaded_response() const;

  Response handle(const HelloRequest& req);
  Response handle(const SetBaselineRequest& req);
  Response handle(const ObserveRequest& req);
  Response handle(const ObserveBatchRequest& req);
  Response handle(const QueryRequest& req);
  Response handle(const StatsRequest& req);
  Response handle(const MetricsRequest& req);
  Response handle(const EventsRequest& req);
  Response handle(const ShutdownRequest& req);

  [[nodiscard]] std::shared_ptr<Session> find_session(const std::string& name);

  // --- durability ---------------------------------------------------------
  /// The single mutation path both the live handlers and journal replay
  /// go through: bumps the round, feeds the troubleshooter, updates the
  /// diagnosis fields. Returns the diagnosis document when this round
  /// fired one. Caller holds `s.mu`.
  static std::optional<std::string> apply_observation(
      Session& s, const probe::Mesh& mesh, const core::ControlPlaneObs* cp);
  /// Appends one record to the session's journal (no-op when null) and
  /// commits a snapshot when one is due. An append failure degrades the
  /// session to ephemeral — requests keep working, durability stops.
  /// Caller holds `s.mu` (or owns the session exclusively).
  void journal_append(Session& s, const Json& payload);
  /// The session's full state as a snapshot document covering every
  /// journaled record up to the journal's last LSN.
  [[nodiscard]] static Json snapshot_doc(const Session& s);
  /// start()-time recovery: sweeps <state_dir>/sessions and rebuilds
  /// every recoverable session; corrupt journals are quarantined and
  /// their sessions left unregistered (amnesia). Only IO failures that
  /// make the state dir unusable return false.
  [[nodiscard]] bool recover_sessions(std::string* error);
  /// Rebuilds one session from its journal; nullptr = quarantined or
  /// unrecoverable (already handled).
  [[nodiscard]] std::shared_ptr<Session> recover_one_session(
      std::unique_ptr<SessionJournal> journal);
  /// Opens the journal for a session created by a live hello.
  [[nodiscard]] std::unique_ptr<SessionJournal> open_journal_for(
      const std::string& session_name);

  /// Shared read path of the stats and metrics verbs: queries the
  /// campaign provider (outside the metrics lock — it may read a
  /// checkpoint), snapshots the counters, folds the live injector fault
  /// counts in, and refreshes quarantined_trials from the campaign
  /// document so neither verb ever serves a stale count.
  [[nodiscard]] ServiceMetrics metrics_snapshot(
      std::optional<Json>* campaign) const;
  [[nodiscard]] double uptime_seconds() const;

  Options opts_;
  Fd listener_;
  /// Recovery epoch (0 = ephemeral server); bumped in start().
  std::uint64_t epoch_ = 0;
  /// Monotonic birth time: uptime_seconds and the stats verb's
  /// `start_monotonic_ms` derive from the steady clock, never wall
  /// clock.
  std::chrono::steady_clock::time_point start_time_{};
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread acceptor_;
  std::unique_ptr<FaultInjector> injector_;  ///< armed only under chaos
  /// Accepted connections still waiting for a worker to pick them up.
  std::atomic<std::size_t> pending_{0};

  std::mutex registry_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;

  mutable std::mutex metrics_mu_;
  ServiceMetrics metrics_;

  std::mutex lifecycle_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;

  std::mutex conns_mu_;
  std::condition_variable conns_cv_;  ///< signaled when a connection ends
  std::set<int> live_conns_;
};

}  // namespace netd::svc
