// Per-session write-ahead journal for the diagnosis service.
//
// When the server runs with a state directory, every session mutation
// (hello, set_baseline, each applied observation) is appended to a
// CRC-framed record log (util::record_log — the same on-disk framing as
// the agent spool) before the response leaves the process. Periodic
// snapshots — the full session state as one JSON document, committed
// with util::atomic_write_file — bound replay time and let the journal
// segments they cover be deleted.
//
// On-disk layout under the server's state directory:
//
//   <state_dir>/EPOCH                       {"epoch": N}, bumped per start
//   <state_dir>/sessions/<enc>/SNAPSHOT     last committed state document
//   <state_dir>/sessions/<enc>/wal-<lsn>.ndj  journal segments; <lsn> is
//                                           the zero-padded first LSN, so
//                                           lexicographic order = append
//                                           order
//   <state_dir>/sessions/<enc>/*.quarantined  corrupt files, kept for
//                                           forensics, never replayed
//
// <enc> is the session name percent-encoded (encode_session_dir) so any
// protocol-legal name maps to a filesystem-safe directory.
//
// Failure philosophy mirrors the spool: a record cut off by the end of
// the newest segment is a torn tail (the server was SIGKILLed
// mid-append — truncate and resume), while a CRC mismatch, an LSN that
// goes backwards, or a gap between segments is corruption the append
// path cannot produce. Corruption quarantines the whole session journal
// (every segment plus the snapshot, renamed *.quarantined — never
// deleted) and the session degrades to the protocol's amnesia path:
// agents get unknown_session, re-hello, and re-ship from their spools.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/record_log.h"

namespace netd::svc {

/// When journal appends reach the disk. SIGKILL never loses OS-buffered
/// writes, so kBatch (fsync only on segment rotation and snapshot
/// commit) already survives process crashes; kAlways additionally
/// survives power loss at the cost of one fsync per mutation —
/// bench_svc measures the gap.
enum class FsyncPolicy {
  kAlways,  ///< fsync after every append
  kBatch,   ///< fsync on rotation/snapshot only
};

[[nodiscard]] const char* to_string(FsyncPolicy p);
[[nodiscard]] std::optional<FsyncPolicy> fsync_policy_from_string(
    std::string_view s);

/// Percent-encodes a session name into a filesystem-safe directory name:
/// bytes outside [A-Za-z0-9_-] (notably '/', '.' and '%' itself) become
/// %XX. Decode inverts it exactly; names round-trip byte-identically.
[[nodiscard]] std::string encode_session_dir(std::string_view session);
[[nodiscard]] std::optional<std::string> decode_session_dir(
    std::string_view dir);

/// Registers every netd_svc_journal_* metric family with the global obs
/// registry. The instruments are lazily created at their first increment;
/// a durable server calls this at start() so an idle scrape already
/// shows the whole family set at zero instead of families appearing as
/// they first fire.
void register_journal_metrics();

/// Reads <state_dir>/EPOCH, increments it and atomically rewrites it.
/// Returns the new epoch (1 on a fresh directory); 0 with `error` on IO
/// failure. The epoch is advertised in hello responses so clients can
/// observe restarts.
[[nodiscard]] std::uint64_t bump_epoch(const std::string& state_dir,
                                       std::string* error);
/// Reads <state_dir>/EPOCH without modifying it (0 = absent/unreadable).
[[nodiscard]] std::uint64_t read_epoch(const std::string& state_dir);

/// Directory names (not decoded session names) under
/// <state_dir>/sessions, sorted. Missing directory = empty vector.
[[nodiscard]] std::vector<std::string> list_session_dirs(
    const std::string& state_dir);

// ---------------------------------------------------------------------------
// Read-only inspection (the `netdiag wal` verb and the recovery path's
// first pass share it).

struct SegmentInfo {
  std::string path;
  util::record_log::Scan scan;
};

struct Inspection {
  bool has_snapshot = false;
  std::string snapshot;               ///< raw SNAPSHOT bytes
  std::vector<SegmentInfo> segments;  ///< wal-*.ndj, append order
  std::size_t quarantined_files = 0;  ///< *.quarantined present in the dir
};

/// Scans one session directory without mutating it.
[[nodiscard]] Inspection inspect_session_dir(const std::string& dir);

// ---------------------------------------------------------------------------

class SessionJournal {
 public:
  struct Options {
    std::string dir;  ///< the per-session directory
    FsyncPolicy fsync = FsyncPolicy::kBatch;
    /// Rotation threshold for one segment's bytes.
    std::uint64_t max_segment_bytes = 4u << 20;
    /// Records appended since the last snapshot before snapshot_due().
    std::size_t snapshot_every = 256;
  };

  struct RecoveryStats {
    std::size_t segments = 0;  ///< validated segments kept
    std::size_t records = 0;   ///< records available for replay
    std::size_t torn_tails = 0;
    std::uint64_t torn_bytes = 0;
    bool quarantined = false;  ///< open() quarantined the whole journal
  };

  /// Opens (creating `opts.dir` if needed) and validates the journal.
  /// A torn tail on the newest segment is truncated away; any
  /// corruption — bad frame, LSN regression, a gap between segments —
  /// quarantines every journal file (stats->quarantined) and returns
  /// nullptr with `error` empty: the caller treats the session as
  /// never-persisted. Returns nullptr with `error` set on IO failure.
  [[nodiscard]] static std::unique_ptr<SessionJournal> open(
      Options opts, std::string* error, RecoveryStats* stats = nullptr);

  ~SessionJournal();
  SessionJournal(const SessionJournal&) = delete;
  SessionJournal& operator=(const SessionJournal&) = delete;

  /// SNAPSHOT contents as read at open (std::nullopt = no snapshot).
  [[nodiscard]] const std::optional<std::string>& snapshot() const {
    return snapshot_;
  }

  /// Records recovered at open, in LSN order, for replay. The caller
  /// filters out LSNs the snapshot already covers. Cleared by
  /// drop_replay_buffer() once recovery is done.
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, std::string>>&
  records() const {
    return records_;
  }
  void drop_replay_buffer() { records_.clear(); records_.shrink_to_fit(); }

  /// Appends one record, fsyncing per policy. Returns the record's LSN
  /// (> 0) or 0 with `error` on failure — after which the caller should
  /// degrade the session to ephemeral rather than retry blindly.
  [[nodiscard]] std::uint64_t append(std::string_view payload,
                                     std::string* error);

  /// True once snapshot_every records accumulated since the last
  /// snapshot (or since open, when replayed records are pending).
  [[nodiscard]] bool snapshot_due() const {
    return records_since_snapshot_ >= opts_.snapshot_every;
  }

  /// Commits `doc` (which must describe state through last_lsn()) as the
  /// new SNAPSHOT and deletes every journal segment it covers. On
  /// failure the journal keeps appending — a missed snapshot only means
  /// longer replay, never lost data.
  [[nodiscard]] bool commit_snapshot(const std::string& doc,
                                     std::string* error);

  /// Renames every journal file to *.quarantined. Used when record
  /// *content* (not framing) fails to parse during replay.
  [[nodiscard]] bool quarantine_all(std::string* error);

  [[nodiscard]] std::uint64_t last_lsn() const { return next_lsn_ - 1; }
  [[nodiscard]] const std::string& dir() const { return opts_.dir; }

 private:
  struct Segment {
    std::string path;
    std::uint64_t first_lsn = 0;
    std::uint64_t last_lsn = 0;
    std::uint64_t bytes = 0;
  };

  explicit SessionJournal(Options opts) : opts_(std::move(opts)) {}

  [[nodiscard]] bool recover(std::string* error, RecoveryStats* stats);
  [[nodiscard]] bool open_active(bool create, std::string* error);
  [[nodiscard]] bool rotate(std::string* error);
  [[nodiscard]] std::string segment_path(std::uint64_t first_lsn) const;

  Options opts_;
  std::vector<Segment> segments_;
  std::vector<std::pair<std::uint64_t, std::string>> records_;
  std::optional<std::string> snapshot_;
  std::uint64_t next_lsn_ = 1;
  std::size_t records_since_snapshot_ = 0;
  int active_fd_ = -1;
};

}  // namespace netd::svc
