#include "svc/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <type_traits>
#include <vector>

#include "core/json_export.h"
#include "obs/registry.h"

namespace netd::svc {

namespace {

const char* op_name(const Request& req) {
  return std::visit(
      [](const auto& r) -> const char* {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, HelloRequest>) {
          return "hello";
        } else if constexpr (std::is_same_v<T, SetBaselineRequest>) {
          return "set_baseline";
        } else if constexpr (std::is_same_v<T, ObserveRequest>) {
          return "observe";
        } else if constexpr (std::is_same_v<T, ObserveBatchRequest>) {
          return "observe_batch";
        } else if constexpr (std::is_same_v<T, QueryRequest>) {
          return "query";
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          return "stats";
        } else if constexpr (std::is_same_v<T, MetricsRequest>) {
          return "metrics";
        } else {
          return "shutdown";
        }
      },
      req);
}

}  // namespace

Server::Server(Options opts) : opts_(std::move(opts)) {
  if (opts_.num_threads == 0) opts_.num_threads = 1;
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  start_time_ = std::chrono::steady_clock::now();
  int bound_port = opts_.endpoint.port;
  listener_ = listen_on(opts_.endpoint, error, &bound_port);
  if (!listener_.valid()) return false;
  opts_.endpoint.port = bound_port;
  if (opts_.fault_plan.enabled()) {
    injector_ = std::make_unique<FaultInjector>(opts_.fault_plan);
  }
  pool_ = std::make_unique<util::ThreadPool>(opts_.num_threads);
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    started_ = true;
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(lifecycle_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_ || stopped_) {
      stopped_ = true;
      return;
    }
    stopped_ = true;
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
  stopping_.store(true);
  // Unblock the acceptor (shutdown() makes a blocked accept() return on
  // Linux; close alone can leave it parked), then join it so no new
  // connections can be submitted to the pool.
  if (listener_.valid()) ::shutdown(listener_.get(), SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.reset();
  if (opts_.endpoint.kind == Endpoint::Kind::kUnix) {
    ::unlink(opts_.endpoint.path.c_str());
  }
  // Graceful drain: handlers poll in bounded chunks, notice stopping_ at
  // their next wakeup and exit after finishing the request in hand. Only
  // connections still alive past the drain budget are force-closed.
  if (opts_.drain_timeout_ms > 0) {
    std::unique_lock<std::mutex> lock(conns_mu_);
    conns_cv_.wait_for(lock,
                       std::chrono::milliseconds(opts_.drain_timeout_ms),
                       [this] { return live_conns_.empty(); });
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : live_conns_) ::shutdown(fd, SHUT_RDWR);
  }
  pool_.reset();  // drains remaining handlers
}

ServiceMetrics Server::metrics_snapshot(std::optional<Json>* campaign) const {
  // The campaign provider may do file I/O (it typically reads a
  // checkpoint); call it before taking the metrics lock. Done on every
  // request, so quarantined_trials tracks the live campaign rather than
  // whatever the checkpoint said when the server attached.
  if (opts_.campaign_stats) *campaign = opts_.campaign_stats();

  ServiceMetrics snapshot;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    snapshot = metrics_;
  }
  if (injector_ != nullptr) {
    // The injector keeps its own counts (it runs outside metrics_mu_);
    // fold the live values in at read time.
    snapshot.faults = injector_->counters();
  }
  if (campaign->has_value()) {
    const Json* q = (*campaign)->find("quarantined");
    if (q != nullptr && q->is_number() && q->as_int() >= 0) {
      snapshot.quarantined_trials = static_cast<std::uint64_t>(q->as_int());
    }
  }
  return snapshot;
}

double Server::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_time_)
      .count();
}

std::string Server::stats_json() const {
  std::optional<Json> campaign;
  ServiceMetrics snapshot = metrics_snapshot(&campaign);
  Json j = snapshot.to_json();
  if (campaign) j.set("campaign", std::move(*campaign));
  // Appended after the pinned ServiceMetrics keys so pre-existing
  // consumers see an unchanged prefix. Millisecond resolution keeps the
  // number lexeme short; both values come from the steady clock.
  const double up = uptime_seconds();
  j.set("uptime_seconds", Json::number(std::round(up * 1000.0) / 1000.0));
  // Named to make the clock domain unmistakable: this is
  // steady_clock::time_since_epoch() (typically time since boot), not a
  // wall-clock Unix timestamp.
  j.set("start_monotonic_ms",
        Json::uinteger(static_cast<unsigned long long>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                start_time_.time_since_epoch())
                .count())));
  return j.dump();
}

std::string Server::metrics_prometheus() const {
  std::optional<Json> campaign;
  const ServiceMetrics snapshot = metrics_snapshot(&campaign);
  std::vector<obs::Sample> extras = snapshot.to_samples();
  obs::Sample up;
  up.name = "netd_svc_uptime_seconds";
  up.help = "Seconds since the server started (monotonic clock)";
  up.type = obs::SampleType::kGauge;
  up.value = uptime_seconds();
  extras.push_back(std::move(up));
  return obs::render_global_prometheus(extras);
}

Response Server::overloaded_response() const {
  return ErrorResponse{"server overloaded, retry later", kErrOverloaded,
                       opts_.retry_after_ms};
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // listener broken; nothing sensible left to do
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      ++metrics_.connections;
    }
    // Overload shedding: every worker is busy and the waiting line is at
    // its cap — tell the peer to come back instead of queueing unbounded.
    if (opts_.max_pending > 0 && pending_.load() >= opts_.max_pending) {
      {
        std::lock_guard<std::mutex> lock(metrics_mu_);
        ++metrics_.shed_requests;
      }
      (void)write_all(fd, serialize(Response{overloaded_response()}) + "\n",
                      1000);
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      live_conns_.insert(fd);
    }
    pending_.fetch_add(1);
    pool_->submit([this, fd] { serve_connection(fd); });
  }
}

bool Server::send_frame(int fd, const std::string& line) {
  // Response writes get a bounded budget once deadlines are configured,
  // so a peer that stops reading cannot pin the worker in send().
  const int timeout_ms = opts_.idle_timeout_ms > 0 ? opts_.idle_timeout_ms : -1;
  if (injector_ != nullptr) {
    return injector_->write_frame(fd, line + "\n", timeout_ms);
  }
  return write_all(fd, line + "\n", timeout_ms);
}

void Server::serve_connection(int fd) {
  pending_.fetch_sub(1);  // this connection now holds a worker
  LineReader reader(fd, opts_.max_frame_bytes);
  // Poll in bounded chunks so the handler observes stop() promptly even
  // with no idle deadline configured; the deadline itself is accumulated
  // across chunks.
  const int chunk_ms =
      opts_.idle_timeout_ms > 0 ? std::min(opts_.idle_timeout_ms, 100) : 100;
  reader.set_timeout_ms(chunk_ms);
  int idle_ms = 0;
  std::string line;
  bool shutdown_after = false;
  while (!shutdown_after && !stopping_.load()) {
    const LineReader::Status status = reader.read_line(&line);
    if (status == LineReader::Status::kTimeout) {
      idle_ms += chunk_ms;
      if (opts_.idle_timeout_ms > 0 && idle_ms >= opts_.idle_timeout_ms) {
        // Slow loris: no complete frame within the budget. Cut the
        // connection and free this worker for peers that do talk.
        {
          std::lock_guard<std::mutex> lock(metrics_mu_);
          ++metrics_.idle_timeouts;
        }
        break;
      }
      continue;
    }
    idle_ms = 0;
    if (status == LineReader::Status::kEof) break;
    if (status == LineReader::Status::kError) {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      ++metrics_.disconnects_mid_request;
      break;
    }
    if (status == LineReader::Status::kOversize) {
      {
        std::lock_guard<std::mutex> lock(metrics_mu_);
        ++metrics_.oversized_frames;
      }
      // The stream cannot be resynchronized past an unterminated giant
      // frame; report and drop the connection.
      (void)send_frame(fd, serialize(Response{ErrorResponse{
                               "frame exceeds size cap", kErrBadFrame,
                               std::nullopt}}));
      break;
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::string parse_error;
    const auto req = parse_request(line, &parse_error);
    if (!req) {
      {
        std::lock_guard<std::mutex> lock(metrics_mu_);
        ++metrics_.malformed_frames;
      }
      // bad_frame: the stream is still framed correctly, so a retrying
      // client may resend on this same connection.
      if (!send_frame(fd, serialize(Response{ErrorResponse{
                              "bad request: " + parse_error, kErrBadFrame,
                              std::nullopt}}))) {
        break;
      }
      continue;
    }

    Response rsp;
    try {
      rsp = dispatch(*req);
    } catch (const std::exception& e) {
      rsp = ErrorResponse{std::string("internal error: ") + e.what()};
    } catch (...) {
      rsp = ErrorResponse{"internal error"};
    }
    const bool ok = !std::holds_alternative<ErrorResponse>(rsp);
    shutdown_after = std::holds_alternative<ShutdownRequest>(*req) && ok;
    const bool written = send_frame(fd, serialize(rsp));
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      metrics_.record(op_name(*req), ok, us);
    }
    if (!written) break;
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    live_conns_.erase(fd);
  }
  conns_cv_.notify_all();
  ::close(fd);
  if (shutdown_after) {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
}

Response Server::dispatch(const Request& req) {
  return std::visit([this](const auto& r) { return handle(r); }, req);
}

std::shared_ptr<Server::Session> Server::find_session(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

Response Server::handle(const HelloRequest& req) {
  std::string error;
  const auto resolved = req.config.resolve(&error);
  if (!resolved) return ErrorResponse{error};
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = sessions_.find(req.session);
  if (it != sessions_.end()) {
    // Attach. A conflicting config would silently change the semantics of
    // everyone else's session, so it is refused rather than adopted.
    if (!(it->second->config == req.config)) {
      return ErrorResponse{"session '" + req.session +
                           "' exists with a different config"};
    }
    return HelloResponse{req.session, false, it->second->config};
  }
  if (opts_.max_sessions > 0 && sessions_.size() >= opts_.max_sessions) {
    {
      std::lock_guard<std::mutex> mlock(metrics_mu_);
      ++metrics_.shed_requests;
    }
    return overloaded_response();
  }
  sessions_.emplace(req.session,
                    std::make_shared<Session>(req.config, *resolved));
  {
    std::lock_guard<std::mutex> mlock(metrics_mu_);
    ++metrics_.sessions_created;
  }
  return HelloResponse{req.session, true, req.config};
}

Response Server::handle(const SetBaselineRequest& req) {
  auto session = find_session(req.session);
  if (session == nullptr) {
    return ErrorResponse{"unknown session '" + req.session + "' (hello first)",
                         kErrUnknownSession};
  }
  std::lock_guard<std::mutex> lock(session->mu);
  session->ts.set_baseline(req.mesh);
  session->round = 0;
  session->diagnosis_round = 0;
  session->diagnosis.clear();
  // New epoch: agents that re-ship a baseline re-ship every observation
  // after it, so stale watermarks must not swallow the redelivery.
  session->src_acks.clear();
  return SetBaselineResponse{req.mesh.paths.size()};
}

Response Server::handle(const ObserveRequest& req) {
  auto session = find_session(req.session);
  if (session == nullptr) {
    return ErrorResponse{"unknown session '" + req.session + "' (hello first)",
                         kErrUnknownSession};
  }
  std::lock_guard<std::mutex> lock(session->mu);
  // Exactly-once rounds: a retried observe whose response was lost on the
  // wire carries the seq the session already applied — answer it from the
  // cache instead of feeding the same round twice.
  if (req.seq.has_value() && session->last_seq == req.seq) {
    {
      std::lock_guard<std::mutex> mlock(metrics_mu_);
      ++metrics_.dedup_hits;
    }
    return session->last_seq_response;
  }
  if (!session->ts.has_baseline()) {
    return ErrorResponse{"session '" + req.session + "' has no baseline",
                         kErrNoBaseline};
  }
  if (req.mesh.paths.size() != session->ts.baseline().paths.size()) {
    return ErrorResponse{
        "mesh covers " + std::to_string(req.mesh.paths.size()) +
        " pairs but the baseline covers " +
        std::to_string(session->ts.baseline().paths.size())};
  }
  ++session->round;
  const core::ControlPlaneObs* cp =
      req.cp.has_value() ? &*req.cp : nullptr;
  const auto out = session->ts.observe(req.mesh, cp);
  ObserveResponse rsp{session->round, session->ts.alarmed(), std::nullopt};
  if (out.has_value()) {
    session->diagnosis = core::to_json(out->graph, out->result);
    session->diagnosis_round = session->round;
    rsp.diagnosis = session->diagnosis;
  }
  if (req.seq.has_value()) {
    session->last_seq = req.seq;
    session->last_seq_response = rsp;
  }
  return rsp;
}

Response Server::handle(const ObserveBatchRequest& req) {
  auto session = find_session(req.session);
  if (session == nullptr) {
    return ErrorResponse{"unknown session '" + req.session + "' (hello first)",
                         kErrUnknownSession};
  }
  ObserveBatchResponse rsp;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    // The watermark entry is created on first contact so even an empty
    // probe batch from a new source answers ack=0 rather than erroring.
    std::uint64_t& watermark = session->src_acks[req.src];
    for (const auto& item : req.items) {
      if (item.seq <= watermark) {
        // Redelivered after a lost response; the round is already in the
        // troubleshooter. Skipping is what makes redelivery exactly-once.
        ++rsp.deduped;
        continue;
      }
      if (!session->ts.has_baseline()) {
        return ErrorResponse{"session '" + req.session + "' has no baseline",
                             kErrNoBaseline};
      }
      if (item.mesh.paths.size() != session->ts.baseline().paths.size()) {
        return ErrorResponse{
            "batch item seq " + std::to_string(item.seq) + " covers " +
            std::to_string(item.mesh.paths.size()) +
            " pairs but the baseline covers " +
            std::to_string(session->ts.baseline().paths.size())};
      }
      ++session->round;
      const core::ControlPlaneObs* cp =
          item.cp.has_value() ? &*item.cp : nullptr;
      const auto out = session->ts.observe(item.mesh, cp);
      if (out.has_value()) {
        session->diagnosis = core::to_json(out->graph, out->result);
        session->diagnosis_round = session->round;
        rsp.diagnosis = session->diagnosis;
      }
      watermark = item.seq;
      ++rsp.applied;
    }
    rsp.ack = watermark;
    rsp.round = session->round;
    rsp.alarmed = session->ts.alarmed();
  }
  if (rsp.deduped > 0) {
    std::lock_guard<std::mutex> mlock(metrics_mu_);
    metrics_.dedup_hits += rsp.deduped;
  }
  return rsp;
}

Response Server::handle(const QueryRequest& req) {
  auto session = find_session(req.session);
  if (session == nullptr) {
    return ErrorResponse{"unknown session '" + req.session + "' (hello first)",
                         kErrUnknownSession};
  }
  std::lock_guard<std::mutex> lock(session->mu);
  QueryResponse rsp{session->diagnosis_round, std::nullopt};
  if (!session->diagnosis.empty()) rsp.diagnosis = session->diagnosis;
  return rsp;
}

Response Server::handle(const StatsRequest&) {
  return StatsResponse{stats_json()};
}

Response Server::handle(const MetricsRequest&) {
  return MetricsResponse{metrics_prometheus()};
}

Response Server::handle(const ShutdownRequest&) { return ShutdownResponse{}; }

}  // namespace netd::svc
