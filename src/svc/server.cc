#include "svc/server.h"

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <type_traits>
#include <vector>

#include "core/json_export.h"
#include "obs/events.h"
#include "obs/registry.h"
#include "obs/span.h"

namespace netd::svc {

namespace {

obs::Counter& append_failure_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "netd_svc_journal_append_failures_total",
      "Journal writes that failed; the session degraded to ephemeral");
  return c;
}

obs::Counter& session_quarantined_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "netd_svc_journal_sessions_quarantined_total",
      "Sessions whose journal was quarantined at recovery (amnesia)");
  return c;
}

obs::Counter& replayed_record_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "netd_svc_journal_replayed_records_total",
      "Journal records replayed into sessions at recovery");
  return c;
}

obs::Counter& session_recovered_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "netd_svc_journal_sessions_recovered_total",
      "Sessions rebuilt from their journal at server start");
  return c;
}

const char* op_name(const Request& req) {
  return std::visit(
      [](const auto& r) -> const char* {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, HelloRequest>) {
          return "hello";
        } else if constexpr (std::is_same_v<T, SetBaselineRequest>) {
          return "set_baseline";
        } else if constexpr (std::is_same_v<T, ObserveRequest>) {
          return "observe";
        } else if constexpr (std::is_same_v<T, ObserveBatchRequest>) {
          return "observe_batch";
        } else if constexpr (std::is_same_v<T, QueryRequest>) {
          return "query";
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          return "stats";
        } else if constexpr (std::is_same_v<T, MetricsRequest>) {
          return "metrics";
        } else if constexpr (std::is_same_v<T, EventsRequest>) {
          return "events";
        } else {
          return "shutdown";
        }
      },
      req);
}

/// The trace id a request carries, for tagging metrics exemplars and ring
/// events. Batches without a batch-level trace fall back to their first
/// item's — the ids all share one shipping pass in practice.
std::uint64_t req_trace_id(const Request& req) {
  return std::visit(
      [](const auto& r) -> std::uint64_t {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, HelloRequest> ||
                      std::is_same_v<T, SetBaselineRequest> ||
                      std::is_same_v<T, ObserveRequest> ||
                      std::is_same_v<T, QueryRequest>) {
          return r.trace.has_value() ? r.trace->trace_id : 0;
        } else if constexpr (std::is_same_v<T, ObserveBatchRequest>) {
          if (r.trace.has_value()) return r.trace->trace_id;
          for (const auto& item : r.items) {
            if (item.trace.has_value()) return item.trace->trace_id;
          }
          return 0;
        } else {
          return 0;
        }
      },
      req);
}

/// An explicit span parent from a wire trace field; invalid (so the span
/// records nothing) when the frame carried no trace. Server-side spans
/// render on lane 0 — trace-merge separates processes by pid.
obs::SpanContext span_parent(const std::optional<obs::TraceContext>& trace) {
  obs::SpanContext ctx;
  if (trace.has_value()) {
    ctx.trace_id = trace->trace_id;
    ctx.span_id = trace->span_id;
  }
  return ctx;
}

}  // namespace

Server::Server(Options opts) : opts_(std::move(opts)) {
  if (opts_.num_threads == 0) opts_.num_threads = 1;
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  start_time_ = std::chrono::steady_clock::now();
  // Eager registration: every netd_svc_journal_* family appears in the
  // metrics verb from the first scrape, zero-valued, instead of popping
  // into existence at its first increment (dashboards hate that).
  register_journal_metrics();
  append_failure_counter();
  session_quarantined_counter();
  replayed_record_counter();
  session_recovered_counter();
  int bound_port = opts_.endpoint.port;
  listener_ = listen_on(opts_.endpoint, error, &bound_port);
  if (!listener_.valid()) return false;
  opts_.endpoint.port = bound_port;
  if (!opts_.state_dir.empty()) {
    // Durable mode: bump the recovery epoch and rebuild every session
    // from its journal before the first connection can be accepted, so
    // a client never observes a half-recovered server.
    epoch_ = bump_epoch(opts_.state_dir, error);
    if (epoch_ == 0) return false;
    if (::mkdir((opts_.state_dir + "/sessions").c_str(), 0755) != 0 &&
        errno != EEXIST) {
      if (error != nullptr) {
        *error = "mkdir " + opts_.state_dir + "/sessions failed";
      }
      return false;
    }
    if (!recover_sessions(error)) return false;
  }
  if (opts_.fault_plan.enabled()) {
    injector_ = std::make_unique<FaultInjector>(opts_.fault_plan);
  }
  pool_ = std::make_unique<util::ThreadPool>(opts_.num_threads);
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    started_ = true;
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(lifecycle_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_ || stopped_) {
      stopped_ = true;
      return;
    }
    stopped_ = true;
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
  stopping_.store(true);
  // Unblock the acceptor (shutdown() makes a blocked accept() return on
  // Linux; close alone can leave it parked), then join it so no new
  // connections can be submitted to the pool.
  if (listener_.valid()) ::shutdown(listener_.get(), SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.reset();
  if (opts_.endpoint.kind == Endpoint::Kind::kUnix) {
    ::unlink(opts_.endpoint.path.c_str());
  }
  // Graceful drain: handlers poll in bounded chunks, notice stopping_ at
  // their next wakeup and exit after finishing the request in hand. Only
  // connections still alive past the drain budget are force-closed.
  if (opts_.drain_timeout_ms > 0) {
    std::unique_lock<std::mutex> lock(conns_mu_);
    conns_cv_.wait_for(lock,
                       std::chrono::milliseconds(opts_.drain_timeout_ms),
                       [this] { return live_conns_.empty(); });
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : live_conns_) ::shutdown(fd, SHUT_RDWR);
  }
  pool_.reset();  // drains remaining handlers
}

ServiceMetrics Server::metrics_snapshot(std::optional<Json>* campaign) const {
  // The campaign provider may do file I/O (it typically reads a
  // checkpoint); call it before taking the metrics lock. Done on every
  // request, so quarantined_trials tracks the live campaign rather than
  // whatever the checkpoint said when the server attached.
  if (opts_.campaign_stats) *campaign = opts_.campaign_stats();

  ServiceMetrics snapshot;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    snapshot = metrics_;
  }
  if (injector_ != nullptr) {
    // The injector keeps its own counts (it runs outside metrics_mu_);
    // fold the live values in at read time.
    snapshot.faults = injector_->counters();
  }
  if (campaign->has_value()) {
    const Json* q = (*campaign)->find("quarantined");
    if (q != nullptr && q->is_number() && q->as_int() >= 0) {
      snapshot.quarantined_trials = static_cast<std::uint64_t>(q->as_int());
    }
  }
  return snapshot;
}

double Server::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_time_)
      .count();
}

std::string Server::stats_json() const {
  std::optional<Json> campaign;
  ServiceMetrics snapshot = metrics_snapshot(&campaign);
  Json j = snapshot.to_json();
  if (campaign) j.set("campaign", std::move(*campaign));
  // Appended after the pinned ServiceMetrics keys so pre-existing
  // consumers see an unchanged prefix. Millisecond resolution keeps the
  // number lexeme short; both values come from the steady clock.
  const double up = uptime_seconds();
  j.set("uptime_seconds", Json::number(std::round(up * 1000.0) / 1000.0));
  // Named to make the clock domain unmistakable: this is
  // steady_clock::time_since_epoch() (typically time since boot), not a
  // wall-clock Unix timestamp.
  j.set("start_monotonic_ms",
        Json::uinteger(static_cast<unsigned long long>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                start_time_.time_since_epoch())
                .count())));
  return j.dump();
}

std::string Server::metrics_prometheus() const {
  std::optional<Json> campaign;
  const ServiceMetrics snapshot = metrics_snapshot(&campaign);
  std::vector<obs::Sample> extras = snapshot.to_samples();
  obs::Sample up;
  up.name = "netd_svc_uptime_seconds";
  up.help = "Seconds since the server started (monotonic clock)";
  up.type = obs::SampleType::kGauge;
  up.value = uptime_seconds();
  extras.push_back(std::move(up));
  return obs::render_global_prometheus(extras);
}

Response Server::overloaded_response() const {
  return ErrorResponse{"server overloaded, retry later", kErrOverloaded,
                       opts_.retry_after_ms};
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // listener broken; nothing sensible left to do
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      ++metrics_.connections;
    }
    // Overload shedding: every worker is busy and the waiting line is at
    // its cap — tell the peer to come back instead of queueing unbounded.
    if (opts_.max_pending > 0 && pending_.load() >= opts_.max_pending) {
      {
        std::lock_guard<std::mutex> lock(metrics_mu_);
        ++metrics_.shed_requests;
      }
      obs::EventRing::record(obs::EventKind::kShed, "accept");
      (void)write_all(fd, serialize(Response{overloaded_response()}) + "\n",
                      1000);
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      live_conns_.insert(fd);
    }
    pending_.fetch_add(1);
    pool_->submit([this, fd] { serve_connection(fd); });
  }
}

bool Server::send_frame(int fd, const std::string& line) {
  // Response writes get a bounded budget once deadlines are configured,
  // so a peer that stops reading cannot pin the worker in send().
  const int timeout_ms = opts_.idle_timeout_ms > 0 ? opts_.idle_timeout_ms : -1;
  if (injector_ != nullptr) {
    return injector_->write_frame(fd, line + "\n", timeout_ms);
  }
  return write_all(fd, line + "\n", timeout_ms);
}

void Server::serve_connection(int fd) {
  pending_.fetch_sub(1);  // this connection now holds a worker
  LineReader reader(fd, opts_.max_frame_bytes);
  // Poll in bounded chunks so the handler observes stop() promptly even
  // with no idle deadline configured; the deadline itself is accumulated
  // across chunks.
  const int chunk_ms =
      opts_.idle_timeout_ms > 0 ? std::min(opts_.idle_timeout_ms, 100) : 100;
  reader.set_timeout_ms(chunk_ms);
  int idle_ms = 0;
  std::string line;
  bool shutdown_after = false;
  while (!shutdown_after && !stopping_.load()) {
    const LineReader::Status status = reader.read_line(&line);
    if (status == LineReader::Status::kTimeout) {
      idle_ms += chunk_ms;
      if (opts_.idle_timeout_ms > 0 && idle_ms >= opts_.idle_timeout_ms) {
        // Slow loris: no complete frame within the budget. Cut the
        // connection and free this worker for peers that do talk.
        {
          std::lock_guard<std::mutex> lock(metrics_mu_);
          ++metrics_.idle_timeouts;
        }
        break;
      }
      continue;
    }
    idle_ms = 0;
    if (status == LineReader::Status::kEof) break;
    if (status == LineReader::Status::kError) {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      ++metrics_.disconnects_mid_request;
      break;
    }
    if (status == LineReader::Status::kOversize) {
      {
        std::lock_guard<std::mutex> lock(metrics_mu_);
        ++metrics_.oversized_frames;
      }
      // The stream cannot be resynchronized past an unterminated giant
      // frame; report and drop the connection.
      (void)send_frame(fd, serialize(Response{ErrorResponse{
                               "frame exceeds size cap", kErrBadFrame,
                               std::nullopt}}));
      break;
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::string parse_error;
    const auto req = parse_request(line, &parse_error);
    if (!req) {
      {
        std::lock_guard<std::mutex> lock(metrics_mu_);
        ++metrics_.malformed_frames;
      }
      // bad_frame: the stream is still framed correctly, so a retrying
      // client may resend on this same connection.
      if (!send_frame(fd, serialize(Response{ErrorResponse{
                              "bad request: " + parse_error, kErrBadFrame,
                              std::nullopt}}))) {
        break;
      }
      continue;
    }

    Response rsp;
    try {
      rsp = dispatch(*req);
    } catch (const std::exception& e) {
      rsp = ErrorResponse{std::string("internal error: ") + e.what()};
    } catch (...) {
      rsp = ErrorResponse{"internal error"};
    }
    const bool ok = !std::holds_alternative<ErrorResponse>(rsp);
    shutdown_after = std::holds_alternative<ShutdownRequest>(*req) && ok;
    const bool written = send_frame(fd, serialize(rsp));
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const std::uint64_t trace_id = req_trace_id(*req);
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      metrics_.record(op_name(*req), ok, us, trace_id);
    }
    if (opts_.slow_request_ms > 0 &&
        us >= static_cast<double>(opts_.slow_request_ms) * 1000.0) {
      obs::EventRing::record(obs::EventKind::kSlowRequest, op_name(*req),
                             trace_id, static_cast<std::uint64_t>(us));
    }
    if (!written) break;
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    live_conns_.erase(fd);
  }
  conns_cv_.notify_all();
  ::close(fd);
  if (shutdown_after) {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
}

Response Server::dispatch(const Request& req) {
  return std::visit([this](const auto& r) { return handle(r); }, req);
}

std::shared_ptr<Server::Session> Server::find_session(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

// ---------------------------------------------------------------------------
// Durability.

namespace {

// Journal record payloads: one compact JSON document per mutation,
// carrying exactly the request fields the handler applied — replay feeds
// them back through the same apply path, which is what makes a recovered
// session byte-identical to the uninterrupted one.
Json hello_record(const SessionConfig& cfg) {
  Json j = Json::object();
  j.set("t", Json::string("hello"));
  j.set("config", session_config_to_json(cfg));
  return j;
}

Json baseline_record(const probe::Mesh& mesh) {
  Json j = Json::object();
  j.set("t", Json::string("baseline"));
  j.set("mesh", mesh_to_json(mesh));
  return j;
}

Json obs_record(const probe::Mesh& mesh, const core::ControlPlaneObs* cp,
                std::optional<std::uint64_t> seq) {
  Json j = Json::object();
  j.set("t", Json::string("obs"));
  j.set("mesh", mesh_to_json(mesh));
  if (cp != nullptr) j.set("cp", cp_to_json(*cp));
  if (seq.has_value()) j.set("seq", Json::uinteger(*seq));
  return j;
}

Json bobs_record(const std::string& src, std::uint64_t seq,
                 const probe::Mesh& mesh, const core::ControlPlaneObs* cp) {
  Json j = Json::object();
  j.set("t", Json::string("bobs"));
  j.set("src", Json::string(src));
  j.set("seq", Json::uinteger(seq));
  j.set("mesh", mesh_to_json(mesh));
  if (cp != nullptr) j.set("cp", cp_to_json(*cp));
  return j;
}

// Strict-enough field readers for documents only this process writes; a
// failed read is corruption and quarantines the journal.
const Json* get_obj(const Json& j, std::string_view key) {
  const Json* v = j.find(key);
  return v != nullptr && v->is_object() ? v : nullptr;
}

std::optional<std::uint64_t> get_u64_field(const Json& j,
                                           std::string_view key) {
  const Json* v = j.find(key);
  if (v == nullptr || !v->is_number() || v->as_int() < 0) return std::nullopt;
  return static_cast<std::uint64_t>(v->as_int());
}

}  // namespace

std::optional<std::string> Server::apply_observation(
    Session& s, const probe::Mesh& mesh, const core::ControlPlaneObs* cp) {
  ++s.round;
  const auto out = s.ts.observe(mesh, cp);
  if (!out.has_value()) return std::nullopt;
  s.diagnosis = core::to_json(out->graph, out->result);
  s.diagnosis_round = s.round;
  return s.diagnosis;
}

Json Server::snapshot_doc(const Session& s) {
  Json j = Json::object();
  // "wal": every record at or below this LSN is folded into this
  // document; recovery replays only what came after.
  j.set("wal", Json::uinteger(s.journal->last_lsn()));
  j.set("config", session_config_to_json(s.config));
  j.set("round", Json::uinteger(s.round));
  j.set("diagnosis_round", Json::uinteger(s.diagnosis_round));
  if (!s.diagnosis.empty()) j.set("diagnosis", Json::raw(s.diagnosis));
  if (s.last_seq.has_value()) {
    j.set("last_seq", Json::uinteger(*s.last_seq));
    Json rsp = Json::object();
    rsp.set("round", Json::uinteger(s.last_seq_response.round));
    rsp.set("alarmed", Json::boolean(s.last_seq_response.alarmed));
    if (s.last_seq_response.diagnosis.has_value()) {
      rsp.set("diagnosis", Json::raw(*s.last_seq_response.diagnosis));
    }
    j.set("last_rsp", std::move(rsp));
  }
  Json acks = Json::object();
  for (const auto& [src, seq] : s.src_acks) {
    acks.set(src, Json::uinteger(seq));
  }
  j.set("src_acks", std::move(acks));
  if (s.ts.has_baseline()) {
    j.set("baseline", mesh_to_json(s.ts.baseline()));
    const auto& det = s.ts.detector();
    Json fails = Json::array();
    for (const std::size_t f : det.consecutive_failures()) {
      fails.push_back(Json::uinteger(f));
    }
    Json alarmed = Json::array();
    for (const bool a : det.alarm_flags()) {
      alarmed.push_back(Json::boolean(a));
    }
    Json d = Json::object();
    d.set("fails", std::move(fails));
    d.set("alarmed", std::move(alarmed));
    j.set("detector", std::move(d));
  }
  return j;
}

void Server::journal_append(Session& s, const Json& payload) {
  if (s.journal == nullptr) return;
  // Ambient: nests under the handler's rx_* span, so a traced frame's
  // timeline shows how long the WAL write (and its fsync) took.
  obs::Span span("journal_append");
  std::string error;
  if (s.journal->append(payload.dump(), &error) == 0) {
    // Durability is best-effort once the disk misbehaves: the session
    // keeps serving from memory (agents see nothing), but a restart now
    // loses it — counted loudly instead of failing the request.
    append_failure_counter().inc();
    s.journal.reset();
    return;
  }
  if (s.journal->snapshot_due()) {
    // A failed snapshot commit is survivable (longer replay next start);
    // commit_snapshot itself degrades to continued journaling.
    (void)s.journal->commit_snapshot(snapshot_doc(s).dump() + "\n", &error);
  }
}

std::unique_ptr<SessionJournal> Server::open_journal_for(
    const std::string& session_name) {
  SessionJournal::Options jopts;
  jopts.dir =
      opts_.state_dir + "/sessions/" + encode_session_dir(session_name);
  jopts.fsync = opts_.fsync;
  jopts.max_segment_bytes = opts_.journal_segment_bytes;
  jopts.snapshot_every = opts_.snapshot_every;
  std::string error;
  SessionJournal::RecoveryStats stats;
  auto journal = SessionJournal::open(std::move(jopts), &error, &stats);
  if (journal == nullptr) {
    // Either IO trouble or a quarantined predecessor; the session runs
    // ephemeral (and a quarantine was already counted by open()).
    append_failure_counter().inc();
  }
  return journal;
}

std::shared_ptr<Server::Session> Server::recover_one_session(
    std::unique_ptr<SessionJournal> journal) {
  obs::Counter& replayed = replayed_record_counter();
  // Content-level corruption (framing was already validated by open):
  // quarantine the whole journal and report no session — the amnesia
  // protocol takes over for its agents.
  auto corrupt = [&journal]() -> std::shared_ptr<Session> {
    std::string error;
    obs::EventRing::record(obs::EventKind::kQuarantine, journal->dir());
    (void)journal->quarantine_all(&error);
    session_quarantined_counter().inc();
    return nullptr;
  };

  std::shared_ptr<Session> s;
  std::string error;
  if (journal->snapshot().has_value()) {
    const auto doc = Json::parse(*journal->snapshot(), &error);
    if (!doc || !doc->is_object()) return corrupt();
    const Json* cfg_json = get_obj(*doc, "config");
    if (cfg_json == nullptr) return corrupt();
    const auto cfg = session_config_from_json(*cfg_json, &error);
    if (!cfg) return corrupt();
    const auto resolved = cfg->resolve(&error);
    if (!resolved) return corrupt();
    s = std::make_shared<Session>(*cfg, *resolved);
    const auto round = get_u64_field(*doc, "round");
    const auto diagnosis_round = get_u64_field(*doc, "diagnosis_round");
    if (!round || !diagnosis_round) return corrupt();
    s->round = static_cast<std::size_t>(*round);
    s->diagnosis_round = static_cast<std::size_t>(*diagnosis_round);
    if (const Json* d = doc->find("diagnosis"); d != nullptr) {
      if (!d->is_object()) return corrupt();
      s->diagnosis = d->dump();
    }
    if (const Json* ls = doc->find("last_seq"); ls != nullptr) {
      const auto seq = get_u64_field(*doc, "last_seq");
      const Json* rsp = get_obj(*doc, "last_rsp");
      if (!seq || rsp == nullptr) return corrupt();
      const auto rsp_round = get_u64_field(*rsp, "round");
      const Json* alarmed = rsp->find("alarmed");
      if (!rsp_round || alarmed == nullptr || !alarmed->is_bool()) {
        return corrupt();
      }
      s->last_seq = *seq;
      s->last_seq_response.round = static_cast<std::size_t>(*rsp_round);
      s->last_seq_response.alarmed = alarmed->as_bool();
      if (const Json* d = rsp->find("diagnosis"); d != nullptr) {
        if (!d->is_object()) return corrupt();
        s->last_seq_response.diagnosis = d->dump();
      }
    }
    const Json* acks = get_obj(*doc, "src_acks");
    if (acks == nullptr) return corrupt();
    for (const auto& [src, seq] : acks->members()) {
      if (!seq.is_number() || seq.as_int() < 0) return corrupt();
      s->src_acks[src] = static_cast<std::uint64_t>(seq.as_int());
    }
    if (const Json* baseline = doc->find("baseline"); baseline != nullptr) {
      auto mesh = mesh_from_json(*baseline, &error);
      const Json* det = get_obj(*doc, "detector");
      if (!mesh || det == nullptr) return corrupt();
      const Json* fails = det->find("fails");
      const Json* alarmed = det->find("alarmed");
      if (fails == nullptr || !fails->is_array() || alarmed == nullptr ||
          !alarmed->is_array() || fails->size() != alarmed->size()) {
        return corrupt();
      }
      std::vector<std::size_t> f(fails->size());
      std::vector<bool> a(alarmed->size());
      for (std::size_t i = 0; i < fails->size(); ++i) {
        if (!(*fails)[i].is_number() || (*fails)[i].as_int() < 0 ||
            !(*alarmed)[i].is_bool()) {
          return corrupt();
        }
        f[i] = static_cast<std::size_t>((*fails)[i].as_int());
        a[i] = (*alarmed)[i].as_bool();
      }
      s->ts.restore(std::move(*mesh), std::move(f), std::move(a));
    }
  }

  for (const auto& [lsn, payload] : journal->records()) {
    (void)lsn;
    const auto rec = Json::parse(payload, &error);
    if (!rec || !rec->is_object()) return corrupt();
    const Json* t = rec->find("t");
    if (t == nullptr || !t->is_string()) return corrupt();
    const std::string& type = t->as_string();
    if (type == "hello") {
      // Only legal as the very first record of a journal with no
      // snapshot — it is what created the session.
      if (s != nullptr) return corrupt();
      const Json* cfg_json = get_obj(*rec, "config");
      if (cfg_json == nullptr) return corrupt();
      const auto cfg = session_config_from_json(*cfg_json, &error);
      if (!cfg) return corrupt();
      const auto resolved = cfg->resolve(&error);
      if (!resolved) return corrupt();
      s = std::make_shared<Session>(*cfg, *resolved);
      replayed.inc();
      continue;
    }
    if (s == nullptr) return corrupt();
    if (type == "baseline") {
      const Json* mesh_json = get_obj(*rec, "mesh");
      if (mesh_json == nullptr) return corrupt();
      auto mesh = mesh_from_json(*mesh_json, &error);
      if (!mesh) return corrupt();
      s->ts.set_baseline(std::move(*mesh));
      s->round = 0;
      s->diagnosis_round = 0;
      s->diagnosis.clear();
      s->src_acks.clear();
    } else if (type == "obs" || type == "bobs") {
      const Json* mesh_json = get_obj(*rec, "mesh");
      if (mesh_json == nullptr) return corrupt();
      const auto mesh = mesh_from_json(*mesh_json, &error);
      if (!mesh) return corrupt();
      std::optional<core::ControlPlaneObs> cp;
      if (const Json* cp_json = rec->find("cp"); cp_json != nullptr) {
        cp = cp_from_json(*cp_json, &error);
        if (!cp) return corrupt();
      }
      if (type == "obs") {
        const auto fired =
            apply_observation(*s, *mesh, cp ? &*cp : nullptr);
        if (rec->find("seq") != nullptr) {
          const auto seq = get_u64_field(*rec, "seq");
          if (!seq) return corrupt();
          s->last_seq = *seq;
          s->last_seq_response =
              ObserveResponse{s->round, s->ts.alarmed(), fired};
        }
      } else {
        const Json* src = rec->find("src");
        const auto seq = get_u64_field(*rec, "seq");
        if (src == nullptr || !src->is_string() || !seq) return corrupt();
        (void)apply_observation(*s, *mesh, cp ? &*cp : nullptr);
        s->src_acks[src->as_string()] = *seq;
      }
    } else {
      return corrupt();
    }
    replayed.inc();
  }
  if (s == nullptr) {
    // A journal with neither snapshot nor hello record names no session
    // config; nothing can be rebuilt from it.
    return corrupt();
  }
  journal->drop_replay_buffer();
  s->journal = std::move(journal);
  return s;
}

bool Server::recover_sessions(std::string* error) {
  obs::Counter& recovered = session_recovered_counter();
  for (const auto& dir_name : list_session_dirs(opts_.state_dir)) {
    const auto session_name = decode_session_dir(dir_name);
    if (!session_name.has_value()) continue;  // not a directory we wrote
    SessionJournal::Options jopts;
    jopts.dir = opts_.state_dir + "/sessions/" + dir_name;
    jopts.fsync = opts_.fsync;
    jopts.max_segment_bytes = opts_.journal_segment_bytes;
    jopts.snapshot_every = opts_.snapshot_every;
    SessionJournal::RecoveryStats stats;
    std::string open_error;
    auto journal = SessionJournal::open(std::move(jopts), &open_error, &stats);
    if (journal == nullptr) {
      if (stats.quarantined) {
        // Framing-level corruption: the journal already renamed its
        // files aside; this session's agents will re-hello and re-ship.
        session_quarantined_counter().inc();
        obs::EventRing::record(obs::EventKind::kQuarantine, dir_name);
        continue;
      }
      if (error != nullptr) *error = open_error;
      return false;
    }
    auto session = recover_one_session(std::move(journal));
    if (session == nullptr) continue;  // quarantined during replay
    sessions_.emplace(*session_name, std::move(session));
    recovered.inc();
  }
  // Recovered sessions count toward sessions_created so the stats verb
  // keeps describing "sessions this server knows", not "hellos served".
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_.sessions_created += sessions_.size();
  }
  return true;
}

Response Server::handle(const HelloRequest& req) {
  obs::Span span("rx_hello", span_parent(req.trace), 0);
  std::string error;
  const auto resolved = req.config.resolve(&error);
  if (!resolved) return ErrorResponse{error};
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = sessions_.find(req.session);
  if (it != sessions_.end()) {
    // Attach. A conflicting config would silently change the semantics of
    // everyone else's session, so it is refused rather than adopted.
    if (!(it->second->config == req.config)) {
      return ErrorResponse{"session '" + req.session +
                           "' exists with a different config"};
    }
    return HelloResponse{req.session, false, it->second->config, epoch_};
  }
  if (opts_.max_sessions > 0 && sessions_.size() >= opts_.max_sessions) {
    {
      std::lock_guard<std::mutex> mlock(metrics_mu_);
      ++metrics_.shed_requests;
    }
    obs::EventRing::record(obs::EventKind::kShed, "hello:" + req.session,
                           req.trace.has_value() ? req.trace->trace_id : 0);
    return overloaded_response();
  }
  auto session = std::make_shared<Session>(req.config, *resolved);
  if (!opts_.state_dir.empty()) {
    // The hello record is the journal's genesis: it carries the config
    // a restarted server needs to re-create the session before replay.
    session->journal = open_journal_for(req.session);
    journal_append(*session, hello_record(req.config));
  }
  sessions_.emplace(req.session, std::move(session));
  {
    std::lock_guard<std::mutex> mlock(metrics_mu_);
    ++metrics_.sessions_created;
  }
  return HelloResponse{req.session, true, req.config, epoch_};
}

Response Server::handle(const SetBaselineRequest& req) {
  obs::Span span("rx_set_baseline", span_parent(req.trace), 0);
  auto session = find_session(req.session);
  if (session == nullptr) {
    return ErrorResponse{"unknown session '" + req.session + "' (hello first)",
                         kErrUnknownSession};
  }
  std::lock_guard<std::mutex> lock(session->mu);
  session->ts.set_baseline(req.mesh);
  session->round = 0;
  session->diagnosis_round = 0;
  session->diagnosis.clear();
  // New epoch: agents that re-ship a baseline re-ship every observation
  // after it, so stale watermarks must not swallow the redelivery.
  session->src_acks.clear();
  journal_append(*session, baseline_record(req.mesh));
  return SetBaselineResponse{req.mesh.paths.size()};
}

Response Server::handle(const ObserveRequest& req) {
  auto session = find_session(req.session);
  if (session == nullptr) {
    return ErrorResponse{"unknown session '" + req.session + "' (hello first)",
                         kErrUnknownSession};
  }
  // Joins the sender's trace: the explicit parent makes this span (and
  // the ambient observe/solve spans core emits underneath) share the
  // trace id the agent stamped at measurement time.
  obs::Span span("rx_observe", span_parent(req.trace),
                 req.seq.value_or(0));
  std::lock_guard<std::mutex> lock(session->mu);
  // Exactly-once rounds: a retried observe whose response was lost on the
  // wire carries the seq the session already applied — answer it from the
  // cache instead of feeding the same round twice.
  if (req.seq.has_value() && session->last_seq == req.seq) {
    {
      std::lock_guard<std::mutex> mlock(metrics_mu_);
      ++metrics_.dedup_hits;
    }
    obs::EventRing::record(obs::EventKind::kDedup, req.session,
                           req.trace.has_value() ? req.trace->trace_id : 0);
    return session->last_seq_response;
  }
  if (!session->ts.has_baseline()) {
    return ErrorResponse{"session '" + req.session + "' has no baseline",
                         kErrNoBaseline};
  }
  if (req.mesh.paths.size() != session->ts.baseline().paths.size()) {
    return ErrorResponse{
        "mesh covers " + std::to_string(req.mesh.paths.size()) +
        " pairs but the baseline covers " +
        std::to_string(session->ts.baseline().paths.size())};
  }
  const core::ControlPlaneObs* cp =
      req.cp.has_value() ? &*req.cp : nullptr;
  const auto fired = apply_observation(*session, req.mesh, cp);
  ObserveResponse rsp{session->round, session->ts.alarmed(), fired};
  if (req.seq.has_value()) {
    session->last_seq = req.seq;
    session->last_seq_response = rsp;
  }
  // Journaled before the response leaves the process: a crash after this
  // point redelivers into the dedup cache, a crash before it redelivers
  // into a round the recovered server never saw — either way applied
  // exactly once as observed by the client.
  journal_append(*session, obs_record(req.mesh, cp, req.seq));
  return rsp;
}

Response Server::handle(const ObserveBatchRequest& req) {
  obs::Span span("rx_observe_batch", span_parent(req.trace), 0);
  auto session = find_session(req.session);
  if (session == nullptr) {
    return ErrorResponse{"unknown session '" + req.session + "' (hello first)",
                         kErrUnknownSession};
  }
  ObserveBatchResponse rsp;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    // The watermark entry is created on first contact so even an empty
    // probe batch from a new source answers ack=0 rather than erroring.
    std::uint64_t& watermark = session->src_acks[req.src];
    for (const auto& item : req.items) {
      // Each item opens its own span under the trace the agent stamped
      // when the round was measured, so one observation's ship→journal→
      // solve timeline carries one trace id end to end.
      obs::Span item_span("rx_batch_item", span_parent(item.trace),
                          item.seq);
      if (item.seq <= watermark) {
        // Redelivered after a lost response; the round is already in the
        // troubleshooter. Skipping is what makes redelivery exactly-once.
        ++rsp.deduped;
        continue;
      }
      if (!session->ts.has_baseline()) {
        return ErrorResponse{"session '" + req.session + "' has no baseline",
                             kErrNoBaseline};
      }
      if (item.mesh.paths.size() != session->ts.baseline().paths.size()) {
        return ErrorResponse{
            "batch item seq " + std::to_string(item.seq) + " covers " +
            std::to_string(item.mesh.paths.size()) +
            " pairs but the baseline covers " +
            std::to_string(session->ts.baseline().paths.size())};
      }
      const core::ControlPlaneObs* cp =
          item.cp.has_value() ? &*item.cp : nullptr;
      const auto fired = apply_observation(*session, item.mesh, cp);
      if (fired.has_value()) rsp.diagnosis = fired;
      watermark = item.seq;
      ++rsp.applied;
      // One record per applied item (not per batch): a crash mid-batch
      // persists exactly the prefix that was applied, and the agent's
      // redelivery of the whole batch dedups that prefix by watermark.
      journal_append(*session, bobs_record(req.src, item.seq, item.mesh, cp));
    }
    rsp.ack = watermark;
    rsp.round = session->round;
    rsp.alarmed = session->ts.alarmed();
  }
  if (rsp.deduped > 0) {
    {
      std::lock_guard<std::mutex> mlock(metrics_mu_);
      metrics_.dedup_hits += rsp.deduped;
    }
    std::uint64_t trace_id = req.trace.has_value() ? req.trace->trace_id : 0;
    if (trace_id == 0 && !req.items.empty() &&
        req.items.front().trace.has_value()) {
      trace_id = req.items.front().trace->trace_id;
    }
    obs::EventRing::record(obs::EventKind::kDedup,
                           req.session + "/" + req.src, trace_id,
                           rsp.deduped);
  }
  return rsp;
}

Response Server::handle(const QueryRequest& req) {
  obs::Span span("rx_query", span_parent(req.trace), 0);
  auto session = find_session(req.session);
  if (session == nullptr) {
    return ErrorResponse{"unknown session '" + req.session + "' (hello first)",
                         kErrUnknownSession};
  }
  std::lock_guard<std::mutex> lock(session->mu);
  QueryResponse rsp{session->diagnosis_round, std::nullopt};
  if (!session->diagnosis.empty()) rsp.diagnosis = session->diagnosis;
  return rsp;
}

Response Server::handle(const StatsRequest&) {
  return StatsResponse{stats_json()};
}

Response Server::handle(const MetricsRequest&) {
  return MetricsResponse{metrics_prometheus()};
}

Response Server::handle(const EventsRequest& req) {
  EventsResponse rsp;
  // The cap bounds one response frame; a tailing client pages with the
  // returned cursor. 0 picks a default small enough for interactive use.
  const std::size_t cap =
      req.cap == 0
          ? 256
          : static_cast<std::size_t>(
                std::min<std::uint64_t>(req.cap, obs::EventRing::kCapacity));
  rsp.events = obs::EventRing::since(req.cursor, cap, &rsp.next_cursor);
  return rsp;
}

Response Server::handle(const ShutdownRequest&) { return ShutdownResponse{}; }

}  // namespace netd::svc
