#include "probe/sensors.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>

namespace netd::probe {

using topo::AsClass;
using topo::AsId;
using topo::RouterId;
using topo::Topology;

const char* to_string(PlacementKind k) {
  switch (k) {
    case PlacementKind::kRandomStub: return "random";
    case PlacementKind::kSameAs: return "same AS";
    case PlacementKind::kDistantAs: return "distant AS";
    case PlacementKind::kDistantAsSplit: return "distant AS, split path";
  }
  return "?";
}

namespace {

std::vector<AsId> ases_of_class(const Topology& topo, AsClass cls) {
  std::vector<AsId> out;
  for (const auto& as : topo.ases()) {
    if (as.cls == cls) out.push_back(as.id);
  }
  return out;
}

/// Provider ASes of `as` (the ASes it buys transit from).
std::set<AsId> providers_of(const Topology& topo, AsId as) {
  std::set<AsId> out;
  for (const auto& link : topo.links()) {
    if (!link.interdomain) continue;
    const AsId a = topo.as_of_router(link.a);
    const AsId b = topo.as_of_router(link.b);
    if (a == as && link.rel_b_from_a == topo::Relationship::kProvider) {
      out.insert(b);
    }
    if (b == as && reverse(link.rel_b_from_a) == topo::Relationship::kProvider) {
      out.insert(a);
    }
  }
  return out;
}

Sensor make_sensor(const Topology& topo, std::size_t index, RouterId attach) {
  return Sensor{"s" + std::to_string(index), attach,
                topo.as_of_router(attach)};
}

/// Spreads `count` sensors over the routers of `as` (round-robin over a
/// shuffled router list when count exceeds the router count).
void spread_in_as(const Topology& topo, AsId as, std::size_t count,
                  std::vector<Sensor>& out, util::Rng& rng) {
  std::vector<RouterId> routers = topo.as_of(as).routers;
  rng.shuffle(routers);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(make_sensor(topo, out.size(), routers[i % routers.size()]));
  }
}

/// Two transit ASes as far apart as the topology allows: prefer a pair of
/// tier-2s with disjoint provider sets (so every inter-sensor path crosses
/// the core), falling back to any distinct pair.
std::pair<AsId, AsId> distant_pair(const Topology& topo, util::Rng& rng) {
  std::vector<AsId> tier2 = ases_of_class(topo, AsClass::kTier2);
  assert(tier2.size() >= 2);
  rng.shuffle(tier2);
  for (std::size_t i = 0; i < tier2.size(); ++i) {
    const auto pi = providers_of(topo, tier2[i]);
    for (std::size_t j = i + 1; j < tier2.size(); ++j) {
      const auto pj = providers_of(topo, tier2[j]);
      std::vector<AsId> inter;
      std::set_intersection(pi.begin(), pi.end(), pj.begin(), pj.end(),
                            std::back_inserter(inter));
      if (inter.empty()) return {tier2[i], tier2[j]};
    }
  }
  return {tier2[0], tier2[1]};
}

}  // namespace

std::size_t placement_capacity(const Topology& topo, PlacementKind kind) {
  if (kind == PlacementKind::kRandomStub) {
    return ases_of_class(topo, AsClass::kStub).size();
  }
  return std::numeric_limits<std::size_t>::max();
}

std::vector<Sensor> place_sensors(const Topology& topo, PlacementKind kind,
                                  std::size_t n, util::Rng& rng) {
  assert(n >= 2);
  std::vector<Sensor> out;
  out.reserve(n);
  switch (kind) {
    case PlacementKind::kRandomStub: {
      std::vector<AsId> stubs = ases_of_class(topo, AsClass::kStub);
      assert(stubs.size() >= n && "not enough stub ASes for placement");
      for (AsId as : rng.sample(stubs, n)) {
        out.push_back(make_sensor(topo, out.size(),
                                  topo.as_of(as).routers.front()));
      }
      break;
    }
    case PlacementKind::kSameAs: {
      // The AS with the most routers gives the most intra-AS path diversity.
      AsId best = topo.ases().front().id;
      for (const auto& as : topo.ases()) {
        if (as.routers.size() > topo.as_of(best).routers.size()) best = as.id;
      }
      spread_in_as(topo, best, n, out, rng);
      break;
    }
    case PlacementKind::kDistantAs: {
      const auto [a, b] = distant_pair(topo, rng);
      spread_in_as(topo, a, n / 2, out, rng);
      spread_in_as(topo, b, n - n / 2, out, rng);
      break;
    }
    case PlacementKind::kDistantAsSplit: {
      const auto [a, b] = distant_pair(topo, rng);
      // A few sensors go to the transit ASes between a and b (their
      // provider cores), splitting the shared link sequence.
      const std::size_t split = std::max<std::size_t>(2, n / 5);
      std::vector<AsId> middle;
      for (AsId p : providers_of(topo, a)) middle.push_back(p);
      for (AsId p : providers_of(topo, b)) {
        if (std::find(middle.begin(), middle.end(), p) == middle.end()) {
          middle.push_back(p);
        }
      }
      const std::size_t remaining = n - std::min(split, n - 2);
      spread_in_as(topo, a, remaining / 2, out, rng);
      spread_in_as(topo, b, remaining - remaining / 2, out, rng);
      for (std::size_t i = 0; out.size() < n; ++i) {
        const AsId mid = middle[i % middle.size()];
        spread_in_as(topo, mid, 1, out, rng);
      }
      break;
    }
  }
  assert(out.size() == n);
  return out;
}

}  // namespace netd::probe
