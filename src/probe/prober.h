// Full-mesh traceroute measurement with traceroute-blocking ASes.
//
// The prober runs the simulator's traceroute between every ordered sensor
// pair and renders each hop the way the troubleshooter would see it:
// identified routers show their address-derived label and AS; routers in
// blocked ASes become unidentified hops (UHs) with a token unique to
// (path, position) — stars in a real traceroute cannot be correlated
// across paths, and the paper's §3.4 all-or-nothing blocking model is
// reproduced exactly.
#pragma once

#include <set>
#include <vector>

#include "graph/graph.h"
#include "probe/sensors.h"
#include "sim/network.h"

namespace netd::probe {

/// One rendered traceroute hop.
struct Hop {
  std::string label;                      ///< router name, sensor name, or UH token
  graph::NodeKind kind = graph::NodeKind::kRouter;
  int asn = -1;                           ///< known AS (identified hops only)
  topo::RouterId router;                  ///< ground truth (invalid for sensor hops)
};

/// One measured path between sensors (ordered pair).
struct TracePath {
  std::size_t src = 0;
  std::size_t dst = 0;
  bool ok = false;
  std::vector<Hop> hops;               ///< sensor, hops..., sensor (complete iff ok)
  std::vector<topo::LinkId> links;     ///< ground-truth topology links traversed
};

/// A full-mesh snapshot at one instant (T− or T+).
struct Mesh {
  std::vector<TracePath> paths;  ///< all ordered pairs, row-major (i, j), i != j

  /// Ground-truth topology links on working paths — the pool failures are
  /// sampled from (the paper breaks links "in E").
  [[nodiscard]] std::vector<topo::LinkId> probed_links() const;
  /// Ground-truth ASes covered by the probes (sensor + transit ASes).
  [[nodiscard]] std::set<int> covered_ases(const topo::Topology& topo) const;
};

/// The Paris-traceroute view of one sensor pair: every ECMP alternative
/// the pair's traffic can take (paper footnote 2 — load-balanced path
/// changes must not be mistaken for reroutes).
struct ParisPaths {
  std::size_t src = 0;
  std::size_t dst = 0;
  std::vector<TracePath> alternatives;
};

/// Full-mesh Paris snapshot, index-aligned with Mesh::paths.
struct ParisMesh {
  std::vector<ParisPaths> pairs;
};

/// True when the single observed T+ path is one of the pair's T− ECMP
/// alternatives — i.e. the "change" is load balancing, not a reroute.
[[nodiscard]] bool is_load_balanced_change(const ParisPaths& before,
                                           const TracePath& after);

/// Merges one retry rendering of the same pair into the accumulated path:
/// every hop starred in `acc` (ICMP rate-limited) but identified in
/// `retry` is filled in. Returns false — leaving `acc` untouched — when
/// the two renderings disagree in length and cannot be aligned hop by hop
/// (the converged state changed between attempts).
[[nodiscard]] bool merge_retry_hops(TracePath& acc, const TracePath& retry);

class Prober {
 public:
  /// `net` must outlive the prober. `blocked_ases` hide all their routers.
  Prober(const sim::Network& net, std::vector<Sensor> sensors,
         std::set<std::uint32_t> blocked_ases = {});

  /// Measures the full mesh at the network's current converged state.
  /// UH tokens are keyed by (pair, position) only — stars observed at T−
  /// and T+ are indistinguishable in reality, so the renderings align.
  [[nodiscard]] Mesh measure() const;

  /// Paris-traceroute measurement: enumerates every ECMP path per pair
  /// (up to `max_paths` each), rendered with the same blocking rules.
  [[nodiscard]] ParisMesh measure_paris(std::size_t max_paths = 32) const;

  [[nodiscard]] const std::vector<Sensor>& sensors() const { return sensors_; }

  /// Flow identifier used for single-path measurements. Flow 0 (default)
  /// models an ECMP-unaware deterministic network; distinct non-zero flows
  /// hash onto (possibly) different equal-cost paths — the classic
  /// traceroute instability Paris traceroute fixes.
  void set_flow(std::uint64_t flow) { flow_ = flow; }
  [[nodiscard]] std::uint64_t flow() const { return flow_; }

  /// ICMP rate limiting (§3.4): each identified hop independently fails
  /// to answer with probability `prob` per traceroute attempt, appearing
  /// as a star. Deterministic per (seed, pair, hop, attempt).
  void set_icmp_drop(double prob, std::uint64_t seed = 1) {
    icmp_drop_prob_ = prob;
    icmp_seed_ = seed;
  }

  /// Measures the mesh `attempts` times and merges: a hop is identified
  /// if any attempt saw it — the paper's "repeating the traceroute"
  /// remedy for rate-limited hops. attempts == 1 equals measure().
  [[nodiscard]] Mesh measure_with_retries(std::size_t attempts) const;
  [[nodiscard]] const std::set<std::uint32_t>& blocked() const {
    return blocked_;
  }

 private:
  /// Renders one simulator trace into the troubleshooter's view
  /// (sensor endpoints added, blocked-AS hops anonymized, rate-limited
  /// hops starred). `attempt` seeds the per-attempt ICMP drops.
  [[nodiscard]] TracePath render(std::size_t i, std::size_t j,
                                 const sim::TraceResult& tr,
                                 std::size_t attempt = 0) const;

  const sim::Network& net_;
  std::vector<Sensor> sensors_;
  std::set<std::uint32_t> blocked_;
  std::uint64_t flow_ = 0;
  double icmp_drop_prob_ = 0.0;
  std::uint64_t icmp_seed_ = 1;
};

}  // namespace netd::probe
