// Robust unreachability detection (paper §6).
//
// Transient events — link flaps, single lost probes — must not invoke the
// troubleshooter. The detector consumes successive full-mesh snapshots and
// raises an alarm for a sensor pair only when the pair has failed in
// `threshold` consecutive measurements; a single working measurement
// clears the pair again.
#pragma once

#include <cstddef>
#include <vector>

#include "probe/prober.h"

namespace netd::probe {

class UnreachabilityDetector {
 public:
  /// `threshold` >= 1: number of consecutive failed measurements before a
  /// pair's alarm fires (the paper suggests "several successive
  /// measurements"; 1 reproduces the naive single-shot behavior).
  explicit UnreachabilityDetector(std::size_t threshold = 3);

  /// Feeds one full-mesh snapshot (all snapshots must cover the same
  /// pairs in the same order). Returns the indices (into mesh.paths) of
  /// pairs whose alarm fired on *this* snapshot.
  std::vector<std::size_t> observe(const Mesh& mesh);

  /// Whether the pair's alarm is currently raised.
  [[nodiscard]] bool alarmed(std::size_t pair_index) const;

  /// Any pair currently alarmed — the "invoke the troubleshooter" signal.
  [[nodiscard]] bool any_alarm() const;

  [[nodiscard]] std::size_t threshold() const { return threshold_; }

  void reset();

  // Crash-recovery introspection/restore (the service journal snapshots
  // detector state so a restarted server resumes flap filtering exactly
  // where the dead incarnation left off, instead of resetting streaks).
  [[nodiscard]] const std::vector<std::size_t>& consecutive_failures() const {
    return consecutive_failures_;
  }
  [[nodiscard]] const std::vector<bool>& alarm_flags() const {
    return alarmed_;
  }
  /// Reinstalls previously observed per-pair state (the two vectors must
  /// be the same length; they are adopted verbatim).
  void restore(std::vector<std::size_t> failures, std::vector<bool> alarmed);

 private:
  std::size_t threshold_;
  std::vector<std::size_t> consecutive_failures_;
  std::vector<bool> alarmed_;
};

}  // namespace netd::probe
