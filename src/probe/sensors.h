// The troubleshooting sensor overlay (paper §2.2, §4 "Sensor placement").
//
// Sensors are end hosts attached to routers; the full mesh of
// traceroutes between them is the measurement substrate of NetDiagnoser.
// Four placement strategies reproduce the paper's Fig. 5 case study.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.h"
#include "util/rng.h"

namespace netd::probe {

struct Sensor {
  std::string name;       ///< e.g. "s0"
  topo::RouterId attach;  ///< router the host hangs off
  topo::AsId as;
};

enum class PlacementKind {
  kRandomStub,     ///< each sensor in a distinct random stub AS (paper default)
  kSameAs,         ///< all sensors in one (core) AS, spread over its routers
  kDistantAs,      ///< N/2 sensors in each of two far-apart transit ASes
  kDistantAsSplit, ///< like kDistantAs plus sensors at intermediate ASes
};

[[nodiscard]] const char* to_string(PlacementKind k);

/// Places `n` sensors according to `kind`. Placement never repeats an AS
/// for kRandomStub; the other strategies may attach several sensors to one
/// router when the AS runs out of routers.
[[nodiscard]] std::vector<Sensor> place_sensors(const topo::Topology& topo,
                                                PlacementKind kind,
                                                std::size_t n, util::Rng& rng);

/// Largest `n` that place_sensors can satisfy for `kind` on `topo`. Only
/// kRandomStub is capped (one sensor per distinct stub AS); the other
/// strategies reuse routers, so any count fits. Callers that oversample —
/// e.g. a planner drawing a candidate pool larger than the deployment —
/// must clamp against this before calling place_sensors.
[[nodiscard]] std::size_t placement_capacity(const topo::Topology& topo,
                                             PlacementKind kind);

}  // namespace netd::probe
