#include "probe/prober.h"

#include <cassert>

#include "obs/registry.h"

namespace netd::probe {

namespace {

/// Probe-plane instruments (registered once; inc() is one relaxed add).
obs::Counter& probes_sent_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "netd_probe_traceroutes_total", "Traceroute probes rendered");
  return c;
}

obs::Counter& blocked_hops_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "netd_probe_blocked_hops_total",
      "Traceroute hops anonymized (blocked AS or ICMP rate limit)");
  return c;
}

}  // namespace

using topo::LinkId;
using topo::RouterId;

std::vector<LinkId> Mesh::probed_links() const {
  std::set<std::uint32_t> seen;
  for (const auto& p : paths) {
    if (!p.ok) continue;
    for (LinkId l : p.links) seen.insert(l.value());
  }
  std::vector<LinkId> out;
  out.reserve(seen.size());
  for (std::uint32_t v : seen) out.push_back(LinkId{v});
  return out;
}

std::set<int> Mesh::covered_ases(const topo::Topology& topo) const {
  std::set<int> out;
  for (const auto& p : paths) {
    for (const auto& h : p.hops) {
      if (h.router.valid()) {
        out.insert(static_cast<int>(topo.as_of_router(h.router).value()));
      } else if (h.asn >= 0) {
        out.insert(h.asn);
      }
    }
  }
  return out;
}

bool is_load_balanced_change(const ParisPaths& before, const TracePath& after) {
  if (!after.ok) return false;
  for (const auto& alt : before.alternatives) {
    if (!alt.ok || alt.hops.size() != after.hops.size()) continue;
    bool same = true;
    for (std::size_t i = 0; i < alt.hops.size() && same; ++i) {
      same = alt.hops[i].label == after.hops[i].label;
    }
    if (same) return true;
  }
  return false;
}

bool merge_retry_hops(TracePath& acc, const TracePath& retry) {
  // A retry against an unchanged converged state renders the same hop
  // count; a mismatch means the network moved under us (a reroute between
  // attempts, or one attempt reached the destination and the other did
  // not). Merging misaligned hops would stitch two different paths
  // together, so keep the accumulated rendering as-is.
  if (retry.hops.size() != acc.hops.size()) return false;
  for (std::size_t p = 0; p < acc.hops.size(); ++p) {
    if (acc.hops[p].kind == graph::NodeKind::kUnidentified &&
        retry.hops[p].kind != graph::NodeKind::kUnidentified) {
      acc.hops[p] = retry.hops[p];
    }
  }
  return true;
}

Prober::Prober(const sim::Network& net, std::vector<Sensor> sensors,
               std::set<std::uint32_t> blocked_ases)
    : net_(net), sensors_(std::move(sensors)), blocked_(std::move(blocked_ases)) {}

namespace {

/// splitmix64, for deterministic per-(seed, pair, hop, attempt) drops.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

TracePath Prober::render(std::size_t i, std::size_t j,
                         const sim::TraceResult& tr,
                         std::size_t attempt) const {
  const auto& topo = net_.topology();
  const Sensor& si = sensors_[i];
  const Sensor& sj = sensors_[j];
  TracePath tp;
  tp.src = i;
  tp.dst = j;
  probes_sent_counter().inc();

  // Source sensor hop.
  tp.hops.push_back(Hop{si.name, graph::NodeKind::kSensor,
                        static_cast<int>(si.as.value()), si.attach});

  std::size_t uh_count = 0;
  for (RouterId r : tr.hops) {
    const auto& router = topo.router(r);
    Hop h;
    h.router = r;
    // ICMP rate limiting: the hop fails to answer this attempt.
    const bool rate_limited =
        icmp_drop_prob_ > 0.0 &&
        static_cast<double>(mix(icmp_seed_ ^ (r.value() * 0x10001ull) ^
                                ((i * 251 + j) << 20) ^ (attempt << 44))) /
                static_cast<double>(~0ull) <
            icmp_drop_prob_;
    if (blocked_.count(router.as.value()) != 0 || rate_limited) {
      blocked_hops_counter().inc();
      // Anonymized: a star unique to this path occurrence.
      h.label = "uh:p" + std::to_string(i) + "-" + std::to_string(j) + ":h" +
                std::to_string(uh_count++);
      h.kind = graph::NodeKind::kUnidentified;
      h.asn = -1;
    } else {
      h.label = router.name;
      h.kind = graph::NodeKind::kRouter;
      h.asn = static_cast<int>(router.as.value());
    }
    tp.hops.push_back(std::move(h));
  }
  tp.links = tr.links;
  tp.ok = tr.ok;
  if (tr.ok) {
    // Destination sensor hop (the probe reached the end host).
    tp.hops.push_back(Hop{sj.name, graph::NodeKind::kSensor,
                          static_cast<int>(sj.as.value()), sj.attach});
  }
  return tp;
}

Mesh Prober::measure() const {
  Mesh mesh;
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    for (std::size_t j = 0; j < sensors_.size(); ++j) {
      if (i == j) continue;
      mesh.paths.push_back(render(
          i, j, net_.trace_flow(sensors_[i].attach, sensors_[j].attach,
                                flow_)));
    }
  }
  return mesh;
}

Mesh Prober::measure_with_retries(std::size_t attempts) const {
  assert(attempts >= 1);
  Mesh merged = measure();  // attempt 0
  for (std::size_t a = 1; a < attempts; ++a) {
    std::size_t k = 0;
    for (std::size_t i = 0; i < sensors_.size(); ++i) {
      for (std::size_t j = 0; j < sensors_.size(); ++j) {
        if (i == j) continue;
        TracePath& acc = merged.paths[k];
        // Same converged state: only the set of answering hops differs.
        const TracePath retry = render(
            i, j, net_.trace_flow(sensors_[i].attach, sensors_[j].attach,
                                  flow_),
            a);
        // A false return (reconverged mid-measurement) keeps attempt 0.
        (void)merge_retry_hops(acc, retry);
        ++k;
      }
    }
  }
  // Star tokens must stay unique per (pair, position): renumber leftovers.
  for (auto& path : merged.paths) {
    std::size_t uh_count = 0;
    for (auto& h : path.hops) {
      if (h.kind == graph::NodeKind::kUnidentified) {
        h.label = "uh:p" + std::to_string(path.src) + "-" +
                  std::to_string(path.dst) + ":h" + std::to_string(uh_count++);
      }
    }
  }
  return merged;
}

ParisMesh Prober::measure_paris(std::size_t max_paths) const {
  ParisMesh mesh;
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    for (std::size_t j = 0; j < sensors_.size(); ++j) {
      if (i == j) continue;
      ParisPaths pp;
      pp.src = i;
      pp.dst = j;
      for (const auto& tr : net_.enumerate_paths(
               sensors_[i].attach, sensors_[j].attach, max_paths)) {
        pp.alternatives.push_back(render(i, j, tr));
      }
      mesh.pairs.push_back(std::move(pp));
    }
  }
  return mesh;
}

}  // namespace netd::probe
