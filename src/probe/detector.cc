#include "probe/detector.h"

#include <cassert>

namespace netd::probe {

UnreachabilityDetector::UnreachabilityDetector(std::size_t threshold)
    : threshold_(threshold) {
  assert(threshold_ >= 1);
}

std::vector<std::size_t> UnreachabilityDetector::observe(const Mesh& mesh) {
  if (consecutive_failures_.empty()) {
    consecutive_failures_.assign(mesh.paths.size(), 0);
    alarmed_.assign(mesh.paths.size(), false);
  }
  assert(consecutive_failures_.size() == mesh.paths.size());

  std::vector<std::size_t> fired;
  for (std::size_t i = 0; i < mesh.paths.size(); ++i) {
    if (mesh.paths[i].ok) {
      consecutive_failures_[i] = 0;
      alarmed_[i] = false;
      continue;
    }
    ++consecutive_failures_[i];
    if (!alarmed_[i] && consecutive_failures_[i] >= threshold_) {
      alarmed_[i] = true;
      fired.push_back(i);
    }
  }
  return fired;
}

bool UnreachabilityDetector::alarmed(std::size_t pair_index) const {
  return pair_index < alarmed_.size() && alarmed_[pair_index];
}

bool UnreachabilityDetector::any_alarm() const {
  for (bool a : alarmed_) {
    if (a) return true;
  }
  return false;
}

void UnreachabilityDetector::reset() {
  consecutive_failures_.clear();
  alarmed_.clear();
}

void UnreachabilityDetector::restore(std::vector<std::size_t> failures,
                                     std::vector<bool> alarmed) {
  assert(failures.size() == alarmed.size());
  consecutive_failures_ = std::move(failures);
  alarmed_ = std::move(alarmed);
}

}  // namespace netd::probe
