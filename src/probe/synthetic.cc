#include "probe/synthetic.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace netd::probe {

using topo::LinkId;
using topo::RouterId;

SyntheticProber::SyntheticProber(const topo::Topology& topo,
                                 std::vector<Sensor> sensors)
    : topo_(topo), sensors_(std::move(sensors)) {
  const std::size_t n = topo_.num_routers();
  adj_off_.assign(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    adj_off_[r + 1] = static_cast<std::uint32_t>(
        adj_off_[r] + topo_.links_of(RouterId{static_cast<std::uint32_t>(r)})
                          .size());
  }
  adj_.resize(adj_off_[n]);
  for (std::size_t r = 0; r < n; ++r) {
    const auto& links = topo_.links_of(RouterId{static_cast<std::uint32_t>(r)});
    std::copy(links.begin(), links.end(), adj_.begin() + adj_off_[r]);
  }
}

Mesh SyntheticProber::measure() const {
  constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
  const std::size_t n = topo_.num_routers();
  Mesh mesh;
  mesh.paths.reserve(sensors_.size() * (sensors_.size() - 1));

  // Per-source BFS scratch, reused across sources.
  std::vector<std::uint32_t> dist(n);
  std::vector<LinkId> parent(n);
  std::vector<std::uint32_t> queue;
  queue.reserve(n);
  std::vector<RouterId> rev_hops;

  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    const RouterId src = sensors_[i].attach;
    std::fill(dist.begin(), dist.end(), kUnreached);
    queue.clear();
    if (topo_.router(src).up) {
      dist[src.value()] = 0;
      queue.push_back(src.value());
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint32_t r = queue[head];
      const std::uint32_t d = dist[r];
      for (std::uint32_t k = adj_off_[r]; k < adj_off_[r + 1]; ++k) {
        const LinkId l = adj_[k];
        if (!topo_.link_usable(l)) continue;
        const std::uint32_t nb =
            topo_.other_end(l, RouterId{r}).value();
        if (dist[nb] != kUnreached) continue;  // first discovery wins:
                                               // FIFO + adjacency order is
                                               // the deterministic tie-break
        dist[nb] = d + 1;
        parent[nb] = l;
        queue.push_back(nb);
      }
    }

    for (std::size_t j = 0; j < sensors_.size(); ++j) {
      if (i == j) continue;
      const Sensor& si = sensors_[i];
      const Sensor& sj = sensors_[j];
      TracePath tp;
      tp.src = i;
      tp.dst = j;
      tp.hops.push_back(Hop{si.name, graph::NodeKind::kSensor,
                            static_cast<int>(si.as.value()), si.attach});
      const RouterId dst = sensors_[j].attach;
      const bool reached =
          topo_.router(dst).up && dist[dst.value()] != kUnreached;
      if (!reached) {
        // Unreachable pair: rendered like a trace that died at the source
        // (the diagnosis only needs the ok flag and the T− path).
        tp.hops.push_back(Hop{topo_.router(src).name, graph::NodeKind::kRouter,
                              static_cast<int>(si.as.value()), src});
        tp.ok = false;
        mesh.paths.push_back(std::move(tp));
        continue;
      }
      // Reconstruct dst -> src over parent links, then emit forwards.
      rev_hops.clear();
      RouterId r = dst;
      while (r != src) {
        rev_hops.push_back(r);
        r = topo_.other_end(parent[r.value()], r);
      }
      tp.hops.push_back(Hop{topo_.router(src).name, graph::NodeKind::kRouter,
                            static_cast<int>(si.as.value()), src});
      tp.links.reserve(rev_hops.size());
      RouterId prev = src;
      for (auto it = rev_hops.rbegin(); it != rev_hops.rend(); ++it) {
        const RouterId hop = *it;
        tp.links.push_back(parent[hop.value()]);
        const auto& router = topo_.router(hop);
        tp.hops.push_back(Hop{router.name, graph::NodeKind::kRouter,
                              static_cast<int>(router.as.value()), hop});
        prev = hop;
      }
      (void)prev;
      tp.ok = true;
      tp.hops.push_back(Hop{sj.name, graph::NodeKind::kSensor,
                            static_cast<int>(sj.as.value()), sj.attach});
      mesh.paths.push_back(std::move(tp));
    }
  }
  return mesh;
}

}  // namespace netd::probe
