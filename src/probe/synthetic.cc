#include "probe/synthetic.h"

#include <algorithm>
#include <cassert>

namespace netd::probe {

using topo::LinkId;
using topo::RouterId;

PathOracle::PathOracle(const topo::Topology& topo) : topo_(topo) {
  const std::size_t n = topo_.num_routers();
  adj_off_.assign(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    adj_off_[r + 1] = static_cast<std::uint32_t>(
        adj_off_[r] + topo_.links_of(RouterId{static_cast<std::uint32_t>(r)})
                          .size());
  }
  adj_.resize(adj_off_[n]);
  for (std::size_t r = 0; r < n; ++r) {
    const auto& links = topo_.links_of(RouterId{static_cast<std::uint32_t>(r)});
    std::copy(links.begin(), links.end(), adj_.begin() + adj_off_[r]);
  }
}

void PathOracle::tree_into(RouterId src, Tree& t) const {
  const std::size_t n = topo_.num_routers();
  t.dist.assign(n, kUnreached);
  t.parent.resize(n);
  std::vector<std::uint32_t> queue;
  queue.reserve(n);
  if (topo_.router(src).up) {
    t.dist[src.value()] = 0;
    queue.push_back(src.value());
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t r = queue[head];
    const std::uint32_t d = t.dist[r];
    for (std::uint32_t k = adj_off_[r]; k < adj_off_[r + 1]; ++k) {
      const LinkId l = adj_[k];
      if (!topo_.link_usable(l)) continue;
      const std::uint32_t nb = topo_.other_end(l, RouterId{r}).value();
      if (t.dist[nb] != kUnreached) continue;  // first discovery wins:
                                               // FIFO + adjacency order is
                                               // the deterministic tie-break
      t.dist[nb] = d + 1;
      t.parent[nb] = l;
      queue.push_back(nb);
    }
  }
}

PathOracle::Tree PathOracle::tree(RouterId src) const {
  Tree t;
  tree_into(src, t);
  return t;
}

bool PathOracle::path_links(const Tree& t, RouterId src, RouterId dst,
                            std::vector<LinkId>& out) const {
  if (!topo_.router(dst).up || t.dist[dst.value()] == kUnreached) return false;
  const std::size_t first = out.size();
  RouterId r = dst;
  while (r != src) {
    out.push_back(t.parent[r.value()]);
    r = topo_.other_end(t.parent[r.value()], r);
  }
  std::reverse(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
  return true;
}

SyntheticProber::SyntheticProber(const topo::Topology& topo,
                                 std::vector<Sensor> sensors)
    : sensors_(std::move(sensors)), oracle_(topo) {}

Mesh SyntheticProber::measure() const {
  const topo::Topology& topo = oracle_.topology();
  Mesh mesh;
  mesh.paths.reserve(sensors_.size() * (sensors_.size() - 1));

  // Per-source BFS tree, reused across sources.
  PathOracle::Tree t;
  std::vector<RouterId> rev_hops;

  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    const RouterId src = sensors_[i].attach;
    oracle_.tree_into(src, t);

    for (std::size_t j = 0; j < sensors_.size(); ++j) {
      if (i == j) continue;
      const Sensor& si = sensors_[i];
      const Sensor& sj = sensors_[j];
      TracePath tp;
      tp.src = i;
      tp.dst = j;
      tp.hops.push_back(Hop{si.name, graph::NodeKind::kSensor,
                            static_cast<int>(si.as.value()), si.attach});
      const RouterId dst = sensors_[j].attach;
      const bool reached =
          topo.router(dst).up && t.dist[dst.value()] != PathOracle::kUnreached;
      if (!reached) {
        // Unreachable pair: rendered like a trace that died at the source
        // (the diagnosis only needs the ok flag and the T− path).
        tp.hops.push_back(Hop{topo.router(src).name, graph::NodeKind::kRouter,
                              static_cast<int>(si.as.value()), src});
        tp.ok = false;
        mesh.paths.push_back(std::move(tp));
        continue;
      }
      // Reconstruct dst -> src over parent links, then emit forwards.
      rev_hops.clear();
      RouterId r = dst;
      while (r != src) {
        rev_hops.push_back(r);
        r = topo.other_end(t.parent[r.value()], r);
      }
      tp.hops.push_back(Hop{topo.router(src).name, graph::NodeKind::kRouter,
                            static_cast<int>(si.as.value()), src});
      tp.links.reserve(rev_hops.size());
      for (auto it = rev_hops.rbegin(); it != rev_hops.rend(); ++it) {
        const RouterId hop = *it;
        tp.links.push_back(t.parent[hop.value()]);
        const auto& router = topo.router(hop);
        tp.hops.push_back(Hop{router.name, graph::NodeKind::kRouter,
                              static_cast<int>(router.as.value()), hop});
      }
      tp.ok = true;
      tp.hops.push_back(Hop{sj.name, graph::NodeKind::kSensor,
                            static_cast<int>(sj.as.value()), sj.attach});
      mesh.paths.push_back(std::move(tp));
    }
  }
  return mesh;
}

}  // namespace netd::probe
