// BGP-free measurement substrate for Internet-scale benchmarks.
//
// Full BGP convergence is infeasible at 10k–100k ASes (the engine keeps a
// per-router RIB over every prefix), but the solver's inputs only need a
// consistent full-mesh of forwarding paths at T− and T+. The synthetic
// prober renders the same probe::Mesh surface from BFS shortest paths
// (hop-count metric, deterministic FIFO/adjacency-order tie-break) over
// the topology's *usable* links, so diagnosis-graph construction and both
// solver implementations run on byte-identical inputs at any scale.
//
// Paths are deterministic per topology: re-measuring after failing links
// yields reroutes (changed working paths) and unreachabilities exactly
// like the simulator does, just without policy routing.
#pragma once

#include <cstdint>
#include <vector>

#include "probe/prober.h"
#include "topo/topology.h"

namespace netd::probe {

class SyntheticProber {
 public:
  /// `topo` must outlive the prober. Adjacency is frozen (CSR) at
  /// construction; link/router up-state is read at each measure() call.
  SyntheticProber(const topo::Topology& topo, std::vector<Sensor> sensors);

  /// Measures the full sensor mesh (ordered pairs, row-major, i != j)
  /// over BFS shortest paths through currently-usable links.
  [[nodiscard]] Mesh measure() const;

  [[nodiscard]] const std::vector<Sensor>& sensors() const { return sensors_; }

 private:
  const topo::Topology& topo_;
  std::vector<Sensor> sensors_;
  // CSR adjacency over router ids, frozen at construction (the arena the
  // per-source BFS walks; usability is re-checked per link per call).
  std::vector<std::uint32_t> adj_off_;
  std::vector<topo::LinkId> adj_;
};

}  // namespace netd::probe
