// BGP-free measurement substrate for Internet-scale benchmarks.
//
// Full BGP convergence is infeasible at 10k–100k ASes (the engine keeps a
// per-router RIB over every prefix), but the solver's inputs only need a
// consistent full-mesh of forwarding paths at T− and T+. The synthetic
// prober renders the same probe::Mesh surface from BFS shortest paths
// (hop-count metric, deterministic FIFO/adjacency-order tie-break) over
// the topology's *usable* links, so diagnosis-graph construction and both
// solver implementations run on byte-identical inputs at any scale.
//
// Paths are deterministic per topology: re-measuring after failing links
// yields reroutes (changed working paths) and unreachabilities exactly
// like the simulator does, just without policy routing.
//
// The BFS itself lives in PathOracle so other consumers — the probe
// planner in src/plan needs per-candidate shortest-path trees — share the
// prober's exact tie-break contract: a path the planner scores is the
// path measure() would later render.
#pragma once

#include <cstdint>
#include <vector>

#include "probe/prober.h"
#include "topo/topology.h"

namespace netd::probe {

/// Frozen-adjacency BFS shortest-path oracle over a topology's routers.
/// Adjacency is snapshotted (CSR, adjacency order) at construction;
/// link/router up-state is read at each tree() call, so failing links and
/// re-querying yields the rerouted trees. The tie-break — FIFO queue,
/// first discovery over links in adjacency order wins — is the
/// determinism contract SyntheticProber::measure() renders and the
/// planner's gain evaluation depends on.
class PathOracle {
 public:
  static constexpr std::uint32_t kUnreached = 0xffffffffu;

  /// `topo` must outlive the oracle.
  explicit PathOracle(const topo::Topology& topo);

  /// One source's BFS tree: hop distance per router (kUnreached when the
  /// router cannot be reached over usable links) and, for every reached
  /// router other than the source, the link leading back toward it.
  struct Tree {
    std::vector<std::uint32_t> dist;
    std::vector<topo::LinkId> parent;
  };

  /// Computes the tree rooted at `src` into `t` (arenas reused across
  /// calls). A downed source router yields an all-unreached tree.
  void tree_into(topo::RouterId src, Tree& t) const;
  [[nodiscard]] Tree tree(topo::RouterId src) const;

  /// Appends the links of the src→dst path (in path order) to `out`.
  /// Returns false — appending nothing — when `dst` is unreached in `t`
  /// or its router is down. src→src is the empty path (true).
  bool path_links(const Tree& t, topo::RouterId src, topo::RouterId dst,
                  std::vector<topo::LinkId>& out) const;

  [[nodiscard]] const topo::Topology& topology() const { return topo_; }

 private:
  const topo::Topology& topo_;
  // CSR adjacency over router ids, frozen at construction (usability is
  // re-checked per link per tree_into call).
  std::vector<std::uint32_t> adj_off_;
  std::vector<topo::LinkId> adj_;
};

class SyntheticProber {
 public:
  /// `topo` must outlive the prober. Adjacency is frozen (CSR) at
  /// construction; link/router up-state is read at each measure() call.
  SyntheticProber(const topo::Topology& topo, std::vector<Sensor> sensors);

  /// Measures the full sensor mesh (ordered pairs, row-major, i != j)
  /// over BFS shortest paths through currently-usable links.
  [[nodiscard]] Mesh measure() const;

  [[nodiscard]] const std::vector<Sensor>& sensors() const { return sensors_; }

 private:
  std::vector<Sensor> sensors_;
  PathOracle oracle_;
};

}  // namespace netd::probe
