#include "obs/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "obs/trace_context.h"

namespace netd::obs {

namespace {

/// Stable shard index for the calling thread: threads are numbered in
/// creation order, taken modulo the shard count. Cheaper and more evenly
/// spread than hashing std::thread::id.
std::size_t thread_shard_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// Renders a double the way the exposition surface wants it: integral
/// values as integers (counters read naturally), everything else with
/// enough digits to round-trip monitoring math.
std::string format_value(double v) {
  // Range-check before casting: long long conversion is UB outside its
  // range and for NaN/Inf (both fail the comparisons below, so they fall
  // through to %g).
  if (v > -1e15 && v < 1e15 &&
      v == static_cast<double>(static_cast<long long>(v))) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// {a="x",b="y"} — empty string when there are no labels. `extra` slips
/// the histogram `le` label in after the user labels.
std::string render_labels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::pair<std::string, std::string>* extra = nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ",";
    out += extra->first;
    out += "=\"";
    out += escape_label_value(extra->second);
    out += "\"";
  }
  out += "}";
  return out;
}

const char* type_name(SampleType t) {
  switch (t) {
    case SampleType::kCounter: return "counter";
    case SampleType::kGauge: return "gauge";
    case SampleType::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram.

Histogram::Histogram(double lo, double growth, std::size_t buckets)
    : lo_(lo), growth_(growth), buckets_(buckets) {
  shards_.reserve(kShards);
  for (std::size_t i = 0; i < kShards; ++i)
    shards_.push_back(std::make_unique<Shard>(lo, growth, buckets));
}

void Histogram::observe(double x) noexcept {
#ifndef NETD_OBS_DISABLED
  const std::uint32_t every = sample_every_.load(std::memory_order_relaxed);
  if (every > 1 &&
      tick_.fetch_add(1, std::memory_order_relaxed) % every != 0)
    return;
  Shard& s = *shards_[thread_shard_slot() % kShards];
  std::lock_guard<std::mutex> lock(s.mu);
  s.h.add(x);
#else
  (void)x;
#endif
}

util::Histogram Histogram::snapshot() const {
  util::Histogram merged(lo_, growth_, buckets_);
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    merged.merge(s->h);
  }
  return merged;
}

// ---------------------------------------------------------------------------
// Registry.

Registry& Registry::global() {
  // Leaked on purpose: instrument references cached at call sites must
  // survive static destruction of everything else.
  static Registry* g = new Registry();
  return *g;
}

Registry::Entry& Registry::find_or_create(
    std::string_view name, std::string_view help, SampleType type,
    std::vector<std::pair<std::string, std::string>> labels) {
  std::string key(name);
  key += render_labels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    if (e->key != key) continue;
    if (e->type != type) {
      // Re-registering a series under a different type is a programmer
      // error that would make the TYPE line lie about the value shape.
      // Fail loudly rather than silently reusing the entry.
      std::fprintf(stderr,
                   "netd_obs: metric '%s' registered as %s but previously "
                   "as %s\n",
                   e->key.c_str(), type_name(type), type_name(e->type));
      std::abort();
    }
    return *e;
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->help = std::string(help);
  e->type = type;
  e->labels = std::move(labels);
  e->key = std::move(key);
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& Registry::counter(
    std::string_view name, std::string_view help,
    std::vector<std::pair<std::string, std::string>> labels) {
  Entry& e = find_or_create(name, help, SampleType::kCounter,
                            std::move(labels));
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(
    std::string_view name, std::string_view help,
    std::vector<std::pair<std::string, std::string>> labels) {
  Entry& e = find_or_create(name, help, SampleType::kGauge, std::move(labels));
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(
    std::string_view name, std::string_view help,
    std::vector<std::pair<std::string, std::string>> labels, double lo,
    double growth, std::size_t buckets) {
  Entry& e =
      find_or_create(name, help, SampleType::kHistogram, std::move(labels));
  if (!e.hist) e.hist = std::make_unique<Histogram>(lo, growth, buckets);
  return *e.hist;
}

std::vector<Sample> Registry::collect() const {
  std::vector<Sample> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& e : entries_) {
      Sample s;
      s.name = e->name;
      s.help = e->help;
      s.type = e->type;
      s.labels = e->labels;
      if (e->counter) s.value = static_cast<double>(e->counter->value());
      if (e->gauge) s.value = e->gauge->value();
      if (e->hist) s.hist = e->hist->snapshot();
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(), [](const Sample& a, const Sample& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return out;
}

// ---------------------------------------------------------------------------
// Exposition.

std::string render_prometheus(const std::vector<Sample>& samples) {
  std::string out;
  std::string last_family;
  for (const Sample& s : samples) {
    if (s.name != last_family) {
      if (!s.help.empty()) {
        out += "# HELP ";
        out += s.name;
        out += " ";
        out += s.help;
        out += "\n";
      }
      out += "# TYPE ";
      out += s.name;
      out += " ";
      out += type_name(s.type);
      out += "\n";
      last_family = s.name;
    }
    if (s.type == SampleType::kHistogram) {
      std::uint64_t cum = 0;
      for (const util::Histogram::Bucket& b : s.hist.nonzero_buckets()) {
        cum += b.count;
        char edge[64];
        if (b.upper == std::numeric_limits<double>::infinity()) continue;
        std::snprintf(edge, sizeof(edge), "%.10g", b.upper);
        const std::pair<std::string, std::string> le{"le", edge};
        out += s.name;
        out += "_bucket";
        out += render_labels(s.labels, &le);
        out += " ";
        out += format_value(static_cast<double>(cum));
        out += "\n";
      }
      const std::pair<std::string, std::string> inf{"le", "+Inf"};
      out += s.name;
      out += "_bucket";
      out += render_labels(s.labels, &inf);
      out += " ";
      out += format_value(static_cast<double>(s.hist.count()));
      out += "\n";
      out += s.name;
      out += "_sum";
      out += render_labels(s.labels);
      out += " ";
      out += format_value(s.hist.sum());
      out += "\n";
      out += s.name;
      out += "_count";
      out += render_labels(s.labels);
      out += " ";
      out += format_value(static_cast<double>(s.hist.count()));
      out += "\n";
    } else {
      out += s.name;
      out += render_labels(s.labels);
      out += " ";
      out += format_value(s.value);
      if (s.exemplar_trace_id != 0) {
        out += " # {trace_id=\"";
        out += format_trace_id(s.exemplar_trace_id);
        out += "\"} 1";
      }
      out += "\n";
    }
  }
  return out;
}

std::string render_global_prometheus(const std::vector<Sample>& extras) {
  std::vector<Sample> all = Registry::global().collect();
  all.insert(all.end(), extras.begin(), extras.end());
  // Re-sort the merged list: extras arrive in caller order and may
  // interleave with registry families; Prometheus parsers require each
  // family contiguous under a single TYPE line.
  std::sort(all.begin(), all.end(), [](const Sample& a, const Sample& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return render_prometheus(all);
}

}  // namespace netd::obs
