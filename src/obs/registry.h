// Process-wide metrics registry: counters, gauges and fixed-memory
// histograms registered by name (+ optional labels), rendered in
// Prometheus text exposition format.
//
// Design constraints, in order:
//   1. Hot-path cost. Counter::inc is one relaxed fetch_add; Gauge::set
//      one relaxed store. Histogram::observe locks, but the lock is
//      sharded by thread (8 cache-line-aligned shards) and a sampling
//      knob lets hot solver loops record every Nth observation only.
//      Instruments are looked up once (function-local static references
//      at the call site) so the registry mutex is off the steady path.
//   2. Compile-out. Configuring with -DNETD_OBS=OFF defines
//      NETD_OBS_DISABLED, turning every mutating fast path into an empty
//      inline function the optimizer deletes. Registration, collection
//      and rendering keep working (instruments simply read as zero), so
//      the `metrics` wire verb and --metrics-out stay functional in both
//      configurations — only the numbers go dark.
//   3. No teardown hazards. The registry is a leaky function-local
//      static; instruments live forever once registered, so references
//      cached at call sites never dangle, including during static
//      destruction of other objects.
//
// Gauges and counters are safe to mutate from any thread with no external
// locking; collect() takes a consistent-enough snapshot (each value is
// read atomically; cross-metric skew is acceptable for monitoring).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace netd::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
#ifndef NETD_OBS_DISABLED
    v_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept {
#ifndef NETD_OBS_DISABLED
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Lock-sharded distribution built on util::Histogram (fixed memory,
/// exponential buckets). Each thread hashes to one of kShards shards, so
/// concurrent observers rarely contend; snapshot() merges the shards.
class Histogram {
 public:
  static constexpr std::size_t kShards = 8;

  Histogram(double lo, double growth, std::size_t buckets);

  /// Records x into the calling thread's shard. With a sampling period n
  /// (set_sample_every), only every nth call across all threads records —
  /// the knob for instrumenting loops too hot to pay a mutex each
  /// iteration; the resulting distribution is a uniform subsample.
  void observe(double x) noexcept;

  /// n >= 1; 1 (the default) records everything.
  void set_sample_every(std::uint32_t n) noexcept {
    sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }

  /// Merged view of all shards.
  [[nodiscard]] util::Histogram snapshot() const;

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    util::Histogram h;
    explicit Shard(double lo, double growth, std::size_t buckets)
        : h(lo, growth, buckets) {}
  };

  double lo_, growth_;
  std::size_t buckets_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint32_t> sample_every_{1};
  std::atomic<std::uint32_t> tick_{0};
};

enum class SampleType { kCounter, kGauge, kHistogram };

/// One collected time-series point, decoupled from the live instruments
/// so renderers can mix registry output with externally produced samples
/// (the service's ServiceMetrics are exposed this way).
struct Sample {
  std::string name;  ///< Prometheus metric name, e.g. "netd_solve_total"
  std::string help;  ///< one-line # HELP text ("" = omit)
  SampleType type = SampleType::kCounter;
  /// Label pairs, rendered in the order given, e.g. {{"op","observe"}}.
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;             ///< counters and gauges
  util::Histogram hist;           ///< histograms (value unused)
  /// Nonzero => the sample line carries an OpenMetrics-style exemplar
  /// (` # {trace_id="0x..."} 1`) linking the series to one concrete
  /// trace. Counters/gauges only; the numeric value stays the last
  /// space-separated token, so plain Prometheus line parsers keep
  /// working if they strip everything from " # " on.
  std::uint64_t exemplar_trace_id = 0;
};

/// Name + labels registry. register-once, mutate-forever: repeated calls
/// with the same (name, labels) return the same instrument. Re-registering
/// an existing (name, labels) under a different type is a programmer error
/// and aborts — silently reusing the entry would emit a TYPE line that
/// lies about the value shape.
class Registry {
 public:
  /// The process-wide registry every instrumented subsystem uses.
  [[nodiscard]] static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(
      std::string_view name, std::string_view help,
      std::vector<std::pair<std::string, std::string>> labels = {});
  [[nodiscard]] Gauge& gauge(
      std::string_view name, std::string_view help,
      std::vector<std::pair<std::string, std::string>> labels = {});
  /// Bucket shape as util::Histogram: lo/growth/buckets.
  [[nodiscard]] Histogram& histogram(
      std::string_view name, std::string_view help,
      std::vector<std::pair<std::string, std::string>> labels = {},
      double lo = 1.0, double growth = 2.0, std::size_t buckets = 28);

  /// Snapshot of every registered instrument, ordered by (name, labels)
  /// so rendering is deterministic.
  [[nodiscard]] std::vector<Sample> collect() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    SampleType type;
    std::vector<std::pair<std::string, std::string>> labels;
    std::string key;  ///< name + rendered labels, the identity
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> hist;
  };

  Entry& find_or_create(
      std::string_view name, std::string_view help, SampleType type,
      std::vector<std::pair<std::string, std::string>> labels);

  mutable std::mutex mu_;
  /// unique_ptr entries so instrument addresses are stable across growth.
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Renders samples in Prometheus text exposition format (# HELP / # TYPE,
/// families grouped, histograms as cumulative _bucket{le=}/_sum/_count).
/// Input order is preserved within a family; families appear in first-seen
/// order. A trailing newline terminates the document.
[[nodiscard]] std::string render_prometheus(const std::vector<Sample>& samples);

/// Registry::global().collect() + extras, merged, re-sorted by
/// (name, labels) so families stay contiguous even when extras share a
/// namespace with registry instruments, and rendered.
[[nodiscard]] std::string render_global_prometheus(
    const std::vector<Sample>& extras = {});

}  // namespace netd::obs
