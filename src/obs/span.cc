#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "obs/trace_context.h"
#include "util/atomic_file.h"

namespace netd::obs {

namespace {

// The ID derivation lives in obs/trace_context.{h,cc} so the wire layer
// shares it; span.cc is just a consumer.

struct SinkState {
  std::mutex mu;
  bool installed = false;
  std::vector<TraceEvent> events;
  std::chrono::steady_clock::time_point epoch;
};

SinkState& sink_state() {
  static SinkState* s = new SinkState();  // leaked: outlives everything
  return *s;
}

/// One relaxed load on every Span construction; flipped under the mutex.
std::atomic<bool>& sink_active_flag() {
  static std::atomic<bool> active{false};
  return active;
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - sink_state().epoch)
      .count();
}

thread_local std::vector<Span::Frame*> tls_stack;

std::string hex_id(std::uint64_t id) { return format_trace_id(id); }

}  // namespace

// ---------------------------------------------------------------------------
// TraceSink.

void TraceSink::install() {
  SinkState& s = sink_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.events.clear();
  s.epoch = std::chrono::steady_clock::now();
  s.installed = true;
  sink_active_flag().store(true, std::memory_order_release);
}

bool TraceSink::active() {
  return sink_active_flag().load(std::memory_order_relaxed);
}

void TraceSink::uninstall() {
  SinkState& s = sink_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.installed = false;
  s.events.clear();
  sink_active_flag().store(false, std::memory_order_release);
}

void TraceSink::emit(TraceEvent ev) {
  SinkState& s = sink_state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.installed) return;
  s.events.push_back(std::move(ev));
}

namespace {

/// Deterministic presentation order: IDs are seed-derived, so sorting by
/// them (not by wall-clock) makes the written file byte-identical across
/// runs except for the ts/dur values.
void sort_events(std::vector<TraceEvent>& evs) {
  std::sort(evs.begin(), evs.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.lane != b.lane) return a.lane < b.lane;
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              if (a.span_id != b.span_id) return a.span_id < b.span_id;
              return a.name < b.name;
            });
}

}  // namespace

std::vector<TraceEvent> TraceSink::snapshot() {
  SinkState& s = sink_state();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    out = s.events;
  }
  sort_events(out);
  return out;
}

bool TraceSink::write_chrome_trace(const std::string& path,
                                   std::string* error) {
  std::vector<TraceEvent> evs = snapshot();
  std::string out = "[\n";
  char buf[160];
  bool first = true;
  for (const TraceEvent& ev : evs) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u", ev.lane);
    out += buf;
    out += ",\"name\":\"";
    out += ev.name;  // span names are identifier-like literals; no escapes
    out += "\",\"ts\":";
    std::snprintf(buf, sizeof(buf), "%.3f", ev.start_us);
    out += buf;
    out += ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f", ev.dur_us);
    out += buf;
    out += ",\"args\":{\"trace\":\"";
    out += hex_id(ev.trace_id);
    out += "\",\"id\":\"";
    out += hex_id(ev.span_id);
    out += "\",\"parent\":\"";
    out += hex_id(ev.parent_id);
    out += "\"}}";
  }
  out += "\n]\n";
  return util::atomic_write_file(path, out, error);
}

// ---------------------------------------------------------------------------
// Span.

SpanContext Span::root_context(std::uint64_t seed, std::uint64_t index,
                               std::uint32_t lane) {
  const TraceContext root = TraceContext::root(seed, index);
  SpanContext ctx;
  ctx.trace_id = root.trace_id;
  ctx.span_id = root.span_id;
  ctx.lane = lane;
  return ctx;
}

SpanContext Span::current() {
  if (tls_stack.empty()) return SpanContext{};
  return tls_stack.back()->ctx;
}

void Span::open(const char* name, const SpanContext& parent,
                std::uint64_t salt, int lane_override) {
#ifndef NETD_OBS_DISABLED
  if (!TraceSink::active() || !parent.valid()) return;
  name_ = name;
  parent_id_ = parent.span_id;
  frame_.ctx.trace_id = parent.trace_id;
  frame_.ctx.span_id = ids::derive_child(parent.span_id, name, salt);
  frame_.ctx.lane =
      lane_override >= 0 ? static_cast<std::uint32_t>(lane_override)
                         : parent.lane;
  start_us_ = now_us();
  recording_ = true;
  tls_stack.push_back(&frame_);
#else
  (void)name;
  (void)parent;
  (void)salt;
  (void)lane_override;
#endif
}

Span::Span(const char* name) {
#ifndef NETD_OBS_DISABLED
  if (!TraceSink::active() || tls_stack.empty()) return;
  Frame* parent = tls_stack.back();
  open(name, parent->ctx, parent->next_child++, -1);
#else
  (void)name;
#endif
}

Span::Span(const char* name, const SpanContext& parent, std::uint64_t salt,
           int lane_override) {
  open(name, parent, salt, lane_override);
}

Span::~Span() {
#ifndef NETD_OBS_DISABLED
  if (!recording_) return;
  // LIFO scope discipline makes this the top frame; tolerate (and repair)
  // a violation rather than corrupting the stack.
  if (!tls_stack.empty() && tls_stack.back() == &frame_) {
    tls_stack.pop_back();
  } else {
    auto it = std::find(tls_stack.rbegin(), tls_stack.rend(), &frame_);
    if (it != tls_stack.rend()) tls_stack.erase(std::next(it).base());
  }
  TraceEvent ev;
  ev.name = name_;
  ev.trace_id = frame_.ctx.trace_id;
  ev.span_id = frame_.ctx.span_id;
  ev.parent_id = parent_id_;
  ev.lane = frame_.ctx.lane;
  ev.start_us = start_us_;
  ev.dur_us = now_us() - start_us_;
  TraceSink::emit(std::move(ev));
#endif
}

// ---------------------------------------------------------------------------
// ScopedParent.

ScopedParent::ScopedParent(const SpanContext& ctx) {
#ifndef NETD_OBS_DISABLED
  if (!TraceSink::active() || !ctx.valid()) return;
  frame_.ctx = ctx;
  tls_stack.push_back(&frame_);
  pushed_ = true;
#else
  (void)ctx;
#endif
}

ScopedParent::~ScopedParent() {
#ifndef NETD_OBS_DISABLED
  if (!pushed_) return;
  if (!tls_stack.empty() && tls_stack.back() == &frame_) {
    tls_stack.pop_back();
  } else {
    auto it = std::find(tls_stack.rbegin(), tls_stack.rend(), &frame_);
    if (it != tls_stack.rend()) tls_stack.erase(std::next(it).base());
  }
#endif
}

}  // namespace netd::obs
