#include "obs/events.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

namespace netd::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSlowRequest:
      return "slow_request";
    case EventKind::kShed:
      return "shed";
    case EventKind::kDedup:
      return "dedup";
    case EventKind::kQuarantine:
      return "quarantine";
    case EventKind::kFsyncStall:
      return "fsync_stall";
  }
  return "unknown";
}

bool parse_event_kind(const std::string& name, EventKind* out) {
  static constexpr EventKind kAll[] = {
      EventKind::kSlowRequest, EventKind::kShed, EventKind::kDedup,
      EventKind::kQuarantine, EventKind::kFsyncStall};
  for (EventKind k : kAll) {
    if (name == event_kind_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

namespace {

constexpr std::size_t kShards = 8;
constexpr std::size_t kPerShard = EventRing::kCapacity / kShards;

struct Shard {
  std::mutex mu;
  std::vector<Event> ring;  // circular, sized lazily to kPerShard
  std::uint64_t written = 0;
};

struct RingState {
  std::atomic<std::uint64_t> next_seq{1};
  std::atomic<bool> epoch_set{false};
  std::mutex epoch_mu;
  std::chrono::steady_clock::time_point epoch;
  Shard shards[kShards];
};

RingState& ring_state() {
  static RingState* s = new RingState();  // leaked: outlives everything
  return *s;
}

std::uint64_t ms_since_epoch() {
  RingState& s = ring_state();
  if (!s.epoch_set.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(s.epoch_mu);
    if (!s.epoch_set.load(std::memory_order_relaxed)) {
      s.epoch = std::chrono::steady_clock::now();
      s.epoch_set.store(true, std::memory_order_release);
    }
  }
  const auto dt = std::chrono::steady_clock::now() - s.epoch;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(dt).count());
}

}  // namespace

#ifndef NETD_OBS_DISABLED
void EventRing::record(EventKind kind, std::string detail,
                       std::uint64_t trace_id, std::uint64_t dur_us) {
  RingState& s = ring_state();
  Event ev;
  ev.t_ms = ms_since_epoch();
  ev.seq = s.next_seq.fetch_add(1, std::memory_order_relaxed);
  ev.kind = kind;
  ev.detail = std::move(detail);
  ev.trace_id = trace_id;
  ev.dur_us = dur_us;
  Shard& shard = s.shards[ev.seq % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.ring.size() < kPerShard) {
    shard.ring.push_back(std::move(ev));
  } else {
    shard.ring[shard.written % kPerShard] = std::move(ev);
  }
  ++shard.written;
}
#endif

std::vector<Event> EventRing::since(std::uint64_t cursor, std::size_t cap,
                                    std::uint64_t* next_cursor) {
  RingState& s = ring_state();
  std::vector<Event> out;
  std::uint64_t newest = cursor;
  for (Shard& shard : s.shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const Event& ev : shard.ring) {
      if (ev.seq > newest) newest = ev.seq;
      if (ev.seq > cursor) out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  if (cap != 0 && out.size() > cap) out.resize(cap);
  if (next_cursor != nullptr) {
    *next_cursor = out.empty() ? newest : out.back().seq;
  }
  return out;
}

std::uint64_t EventRing::total_recorded() {
  RingState& s = ring_state();
  std::uint64_t total = 0;
  for (Shard& shard : s.shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.written;
  }
  return total;
}

void EventRing::reset_for_test() {
  RingState& s = ring_state();
  for (Shard& shard : s.shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.ring.clear();
    shard.written = 0;
  }
  s.next_seq.store(1, std::memory_order_relaxed);
}

}  // namespace netd::obs
