// Cross-process trace identity: the (trace_id, span_id) pair that rides
// the wire between netdiag-agent, the service and the solver.
//
// This is the public face of the deterministic ID scheme the spans in
// span.h have always used internally: trace roots are pure functions of
// (seed, index) and children are pure functions of (parent, name-hash,
// salt), so an agent can stamp an observation's trace id at measurement
// time, crash, replay it from the spool and re-derive the *same* id —
// redelivered frames join the same trace instead of forking a new one.
//
// The `ids` namespace exposes the raw mixers so span.cc and any future
// id consumer share one implementation; changing these constants changes
// every pinned trace golden, so don't.
//
// Wire encoding is a zero-padded hex string ("0x0123456789abcdef"):
// JSON numbers cannot carry a uint64 without lexeme anxiety, a string
// can. format/parse round-trip exactly.
#pragma once

#include <cstdint>
#include <string>

namespace netd::obs {

namespace ids {

/// splitmix64 finalizer: the bijective mixer behind the deterministic ID
/// scheme. Good avalanche, zero state.
std::uint64_t mix64(std::uint64_t x);

/// Order-sensitive combiner for two ids.
std::uint64_t combine(std::uint64_t a, std::uint64_t b);

/// FNV-1a over a NUL-terminated name.
std::uint64_t fnv1a(const char* s);

/// Child span id from (parent id, name, salt); never returns 0 (the
/// "not recording" sentinel).
std::uint64_t derive_child(std::uint64_t parent_id, const char* name,
                           std::uint64_t salt);

}  // namespace ids

/// A trace identity small enough to put on every frame. `trace_id == 0`
/// means "no trace attached".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool valid() const { return trace_id != 0; }

  /// Deterministic root for unit-of-work `index` under `seed` — the same
  /// derivation as Span::root_context, minus the rendering lane.
  [[nodiscard]] static TraceContext root(std::uint64_t seed,
                                         std::uint64_t index);

  /// Deterministic child id under this context (trace id is inherited).
  [[nodiscard]] TraceContext child(const char* name,
                                   std::uint64_t salt) const;

  friend bool operator==(const TraceContext& a, const TraceContext& b) {
    return a.trace_id == b.trace_id && a.span_id == b.span_id;
  }
};

/// "0x%016llx" — the one id rendering used on the wire, in trace files
/// and in Prometheus exemplars.
[[nodiscard]] std::string format_trace_id(std::uint64_t id);

/// Parses format_trace_id output (leading "0x" optional). Returns false
/// on empty/overlong/non-hex input; `*out` is untouched on failure.
[[nodiscard]] bool parse_trace_id(const std::string& text,
                                  std::uint64_t* out);

}  // namespace netd::obs
