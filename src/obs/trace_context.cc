#include "obs/trace_context.h"

#include <cctype>
#include <cstdio>

namespace netd::obs {

namespace ids {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ mix64(b));
}

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t derive_child(std::uint64_t parent_id, const char* name,
                           std::uint64_t salt) {
  std::uint64_t id = combine(parent_id, fnv1a(name) ^ salt);
  return id == 0 ? 1 : id;  // 0 is the "not recording" sentinel
}

}  // namespace ids

TraceContext TraceContext::root(std::uint64_t seed, std::uint64_t index) {
  TraceContext ctx;
  ctx.trace_id = ids::combine(seed, index + 1);
  if (ctx.trace_id == 0) ctx.trace_id = 1;
  ctx.span_id = ctx.trace_id;
  return ctx;
}

TraceContext TraceContext::child(const char* name, std::uint64_t salt) const {
  TraceContext ctx;
  ctx.trace_id = trace_id;
  ctx.span_id = ids::derive_child(span_id, name, salt);
  return ctx;
}

std::string format_trace_id(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

bool parse_trace_id(const std::string& text, std::uint64_t* out) {
  std::size_t i = 0;
  if (text.size() >= 2 && text[0] == '0' &&
      (text[1] == 'x' || text[1] == 'X')) {
    i = 2;
  }
  if (i == text.size() || text.size() - i > 16) return false;
  std::uint64_t v = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  *out = v;
  return true;
}

}  // namespace netd::obs
