// Structured event ring: a bounded, process-global, lock-sharded buffer
// of "something notable happened" records — slow requests, load sheds,
// duplicate deliveries, journal quarantines, fsync stalls — each tagged
// with the trace id of the frame that triggered it, so `netdiag tail`
// can answer "what is the fleet doing right now" and a slow request can
// be joined to its Perfetto timeline by id.
//
// Design: one global monotone sequence number; the shard is picked by
// seq so writers on different threads rarely contend on the same mutex.
// Each shard is a fixed circular buffer — the ring is bounded by
// construction, old events are overwritten, nothing allocates on the
// record path beyond the detail string move. Readers (`events` wire
// verb) merge the shards, filter by cursor and cap the result; a cursor
// of 0 reads from the oldest retained event.
//
// With NETD_OBS=OFF the record path compiles out (EventRing::record is
// an inline no-op); drain/reset keep working and report an empty ring,
// so the `events` verb and `netdiag tail` stay wire-compatible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace netd::obs {

enum class EventKind : std::uint8_t {
  kSlowRequest = 0,
  kShed = 1,
  kDedup = 2,
  kQuarantine = 3,
  kFsyncStall = 4,
};

/// Stable lowercase wire name ("slow_request", "shed", ...).
[[nodiscard]] const char* event_kind_name(EventKind kind);

/// Inverse of event_kind_name; false on unknown names.
[[nodiscard]] bool parse_event_kind(const std::string& name, EventKind* out);

struct Event {
  std::uint64_t seq = 0;   ///< global order; strictly increasing
  std::uint64_t t_ms = 0;  ///< milliseconds since the ring's first use
  EventKind kind = EventKind::kSlowRequest;
  std::string detail;            ///< op/session/segment — short, identifier-ish
  std::uint64_t trace_id = 0;    ///< 0 = no trace attached
  std::uint64_t dur_us = 0;      ///< request latency / stall length; 0 = n/a
};

class EventRing {
 public:
  /// Total retained capacity (shards * per-shard ring).
  static constexpr std::size_t kCapacity = 4096;

  /// Records one event. Thread-safe, bounded, never blocks on readers of
  /// other shards. Compiled out under NETD_OBS=OFF.
#ifndef NETD_OBS_DISABLED
  static void record(EventKind kind, std::string detail,
                     std::uint64_t trace_id = 0, std::uint64_t dur_us = 0);
#else
  static void record(EventKind, std::string, std::uint64_t = 0,
                     std::uint64_t = 0) {}
#endif

  /// Events with seq > cursor, oldest first, at most `cap` (0 = a server
  /// -chosen default). `*next_cursor` is the last returned seq, or the
  /// newest retained seq when nothing qualified (so a tailing client
  /// can skip a gap it slept through).
  [[nodiscard]] static std::vector<Event> since(std::uint64_t cursor,
                                                std::size_t cap,
                                                std::uint64_t* next_cursor);

  /// Sum of events ever recorded (including overwritten ones).
  [[nodiscard]] static std::uint64_t total_recorded();

  /// Drops every retained event and rewinds the sequence. Test-only.
  static void reset_for_test();
};

}  // namespace netd::obs
