// Structured tracing: RAII spans with deterministic IDs, exported as a
// Chrome trace_event JSON file that Perfetto / chrome://tracing opens.
//
// Determinism is the point. A span's ID is derived purely from its
// position in the call tree — trace root from (campaign seed, placement
// index), children from (parent ID, name hash, per-parent child index) —
// never from time, thread IDs or addresses. Two runs with the same seed
// therefore produce the *same* span tree (IDs and parent/child edges);
// only timestamps differ, so traces can be diffed across runs and across
// --threads settings (EXPERIMENTS.md has the recipe).
//
// Parenting is ambient per thread: constructing a Span makes it the
// thread's current span, and nested Spans attach to it automatically. To
// cross a ThreadPool task boundary, derive the root context on the
// submitting side (or recompute it anywhere from the seed — see
// root_context) and construct the first Span on the worker with the
// explicit (parent, salt) overload; everything below nests ambiently.
// The salt takes the place of the ambient child counter, so IDs stay
// deterministic no matter which worker runs the task or in what order.
//
// Spans record only while a TraceSink is installed (netdiag run
// --trace-out does that); otherwise construction is one relaxed atomic
// load and a branch. With NETD_OBS=OFF the bodies compile out entirely
// and a trace file contains no events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace netd::obs {

/// Identity of one span; `span_id == 0` means "not recording".
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  /// Rendering lane (Chrome "tid"); placements use index+1, lane 0 is
  /// the coordinating thread.
  std::uint32_t lane = 0;

  [[nodiscard]] bool valid() const { return span_id != 0; }
};

/// One finished span, as captured by the sink.
struct TraceEvent {
  std::string name;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root of its trace
  std::uint32_t lane = 0;
  double start_us = 0.0;  ///< relative to sink installation
  double dur_us = 0.0;
};

/// Process-global capture buffer. Install once (e.g. for --trace-out),
/// run the traced workload, then write or drain. All methods are
/// thread-safe; events are buffered under a mutex — tracing is a
/// diagnosis tool, not a steady-state production path.
class TraceSink {
 public:
  /// Starts capturing (clears any previous buffer).
  static void install();
  [[nodiscard]] static bool active();
  /// Stops capturing and discards the buffer.
  static void uninstall();

  /// Current buffer, deterministically ordered by (lane, trace, span id).
  [[nodiscard]] static std::vector<TraceEvent> snapshot();

  /// Writes the buffer as a Chrome trace_event JSON array (one event per
  /// line) via util::atomic_write_file. Returns false with `error` on IO
  /// failure. The sink stays installed.
  [[nodiscard]] static bool write_chrome_trace(const std::string& path,
                                               std::string* error);

  /// Internal: called by ~Span.
  static void emit(TraceEvent ev);
};

/// RAII span. Construct to open, destroy to close (emits one TraceEvent
/// if recording). Must be destroyed on the constructing thread, in LIFO
/// order per thread — i.e. used as a scoped local.
class Span {
 public:
  /// Ambient child of the calling thread's current span. Inert (records
  /// nothing, costs a branch) when no sink is installed or the thread has
  /// no current span.
  explicit Span(const char* name);

  /// Explicit child of `parent` — the cross-thread form. `salt` replaces
  /// the ambient child counter in the ID derivation and must be chosen
  /// deterministically by the caller (e.g. the placement index).
  /// `lane_override` >= 0 moves this span and its ambient descendants to
  /// that rendering lane.
  Span(const char* name, const SpanContext& parent, std::uint64_t salt,
       int lane_override = -1);

  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  [[nodiscard]] const SpanContext& context() const { return frame_.ctx; }

  /// The calling thread's current span context (invalid when none).
  [[nodiscard]] static SpanContext current();

  /// The deterministic root context for unit-of-work `index` under
  /// `seed`: recomputable anywhere, which is how checkpoint commits on
  /// the coordinator thread join the trace of a placement that ran on a
  /// worker. Valid (usable as a parent) even when no sink is installed.
  [[nodiscard]] static SpanContext root_context(std::uint64_t seed,
                                                std::uint64_t index,
                                                std::uint32_t lane);

  /// Internal: one entry of the per-thread ambient-parent stack. Public
  /// only so the implementation's thread_local stack can name it.
  struct Frame {
    SpanContext ctx;
    std::uint64_t next_child = 0;
  };

 private:
  void open(const char* name, const SpanContext& parent, std::uint64_t salt,
            int lane_override);

  Frame frame_;
  std::uint64_t parent_id_ = 0;
  const char* name_ = "";
  double start_us_ = 0.0;
  bool recording_ = false;
};

/// Adopts `ctx` as the calling thread's current span for the enclosing
/// scope without emitting an event — the lightweight way to parent
/// ambient spans under work that logically belongs to another thread's
/// span (no-op when `ctx` is invalid or no sink is installed).
class ScopedParent {
 public:
  explicit ScopedParent(const SpanContext& ctx);
  ~ScopedParent();

  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;

 private:
  Span::Frame frame_;
  bool pushed_ = false;
};

}  // namespace netd::obs
