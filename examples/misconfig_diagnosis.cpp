// Router-misconfiguration diagnosis (the paper's Fig. 3 scenario).
//
// A BGP export filter is misconfigured on an interdomain link: the link
// keeps carrying some sensor paths while silently dropping a prefix, so
// plain Boolean tomography (Tomo) exonerates it. ND-edge's logical links
// catch it.
//
//   $ ./misconfig_diagnosis
#include <iostream>

#include "core/algorithms.h"
#include "exp/runner.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"

using namespace netd;

int main() {
  sim::Network net(topo::tiny_topology());
  net.converge();
  const auto& topo = net.topology();

  // Sensors in three stubs; stub AS7 is multihomed.
  std::vector<probe::Sensor> sensors;
  for (std::uint32_t as : {4u, 6u, 7u}) {
    sensors.push_back(probe::Sensor{
        "s" + std::to_string(sensors.size()),
        topo.as_of(topo::AsId{as}).routers.front(), topo::AsId{as}});
  }
  probe::Prober prober(net, sensors);
  const probe::Mesh before = prober.measure();

  // Find a misconfiguration candidate: an interdomain hop q -> r on a
  // probed path toward some destination sensor; r stops exporting that
  // destination's prefix to q.
  topo::RouterId exporter;
  topo::LinkId link;
  topo::PrefixId prefix;
  for (const auto& p : before.paths) {
    if (!p.ok) continue;
    for (std::size_t i = 0; i < p.links.size(); ++i) {
      if (topo.link(p.links[i]).interdomain) {
        link = p.links[i];
        exporter = p.hops[i + 2].router;  // far side of the hop
        prefix = topo::PrefixId{static_cast<std::uint32_t>(p.hops.back().asn)};
        break;
      }
    }
    if (link.valid()) break;
  }
  std::cout << "Misconfiguring " << topo.router(exporter).name
            << ": stop exporting prefix of AS" << prefix.value()
            << " over link " << exp::link_key(topo, link) << "\n";
  net.misconfigure_export(exporter, link, prefix);
  net.reconverge();

  const probe::Mesh after = prober.measure();
  std::size_t broken = 0;
  for (std::size_t k = 0; k < before.paths.size(); ++k) {
    if (before.paths[k].ok && !after.paths[k].ok) ++broken;
  }
  std::cout << "Broken sensor pairs: " << broken << "\n";
  if (broken == 0) {
    std::cout << "(the filter was recoverable by rerouting — the "
                 "troubleshooter would not be invoked)\n";
    return 0;
  }

  const auto tomo = core::run_tomo(before, after);
  const auto nd = core::run_nd_edge(before, after);
  const std::string truth = exp::link_key(topo, link);
  auto verdict = [&](const char* name, const core::AlgorithmOutput& out) {
    const bool hit = out.result.links.count(truth) != 0;
    std::cout << name << ": " << out.result.links.size()
              << " hypothesis links, misconfigured link "
              << (hit ? "FOUND" : "missed") << "\n";
    for (const auto& k : out.result.links) std::cout << "    " << k << "\n";
  };
  verdict("Tomo   ", tomo);
  verdict("ND-edge", nd);
  return 0;
}
