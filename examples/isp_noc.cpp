// The ISP NOC workflow on the paper's full evaluation topology.
//
// AS-X (a core ISP) runs the troubleshooter: 10 sensors at random stub
// ASes probe in a full mesh; two simultaneous link failures hit the
// network; the NOC combines end-to-end data with its own IGP/BGP feeds
// (ND-bgpigp) and compares against plain tomography.
//
//   $ ./isp_noc [seed]
#include <cstdlib>
#include <iostream>

#include "core/algorithms.h"
#include "core/diagnosability.h"
#include "exp/runner.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"
#include "util/rng.h"

using namespace netd;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  topo::GeneratorParams params;  // the paper's 165-AS topology
  params.seed = 1;
  sim::Network net(topo::generate(params));
  net.converge();
  const auto& topo = net.topology();
  std::cout << "Internet model: " << topo.num_ases() << " ASes / "
            << topo.num_routers() << " routers / " << topo.num_links()
            << " links\n";

  const topo::AsId as_x{0};
  net.set_operator_as(as_x);

  util::Rng rng(seed);
  const auto sensors =
      probe::place_sensors(topo, probe::PlacementKind::kRandomStub, 10, rng);
  probe::Prober prober(net, sensors);
  const probe::Mesh before = prober.measure();
  const auto dg =
      core::build_diagnosis_graph(before, before, /*logical_links=*/false);
  std::cout << "Probed graph: " << dg.probed_keys.size()
            << " links, diagnosability D(G) = " << core::diagnosability(dg)
            << "\n";

  // Two simultaneous link failures somewhere on the probed paths.
  const auto pool = before.probed_links();
  const auto victims = rng.sample(pool, 2);
  std::cout << "\nFailing:";
  for (auto l : victims) std::cout << " " << exp::link_key(topo, l);
  std::cout << "\n";

  net.start_recording();
  for (auto l : victims) net.fail_link(l);
  net.reconverge();
  const probe::Mesh after = prober.measure();

  std::size_t broken = 0, rerouted = 0;
  for (std::size_t k = 0; k < before.paths.size(); ++k) {
    if (!before.paths[k].ok) continue;
    if (!after.paths[k].ok) {
      ++broken;
    } else if (after.paths[k].links != before.paths[k].links) {
      ++rerouted;
    }
  }
  std::cout << "Sensor pairs broken: " << broken << ", rerouted: " << rerouted
            << "\n";
  if (broken == 0) {
    std::cout << "All failures recovered by routing; NOC not invoked. "
                 "Try another seed.\n";
    return 0;
  }

  const auto cp = exp::collect_control_plane(net);
  std::cout << "AS-X observations: " << cp.igp_down_keys.size()
            << " IGP link-down events, " << cp.withdrawals.size()
            << " BGP withdrawals received\n";

  std::set<std::string> truth;
  for (auto l : victims) truth.insert(exp::link_key(topo, l));

  auto report = [&](const char* name, const core::AlgorithmOutput& out) {
    const auto m = core::link_metrics(out.result.links, truth,
                                      out.graph.probed_keys);
    std::cout << "\n" << name << ": |H| = " << out.result.links.size()
              << ", sensitivity = " << m.sensitivity
              << ", specificity = " << m.specificity << "\n";
    for (const auto& k : out.result.links) {
      std::cout << "  " << k << (truth.count(k) ? "   <-- actually failed" : "")
                << "\n";
    }
  };
  report("Tomo", core::run_tomo(before, after));
  report("ND-edge", core::run_nd_edge(before, after));
  report("ND-bgpigp", core::run_nd_bgpigp(before, after, cp));
  return 0;
}
