// Quickstart: the paper's Fig. 1/2 walk-through at small scale.
//
// Builds a small multi-AS topology, converges routing, deploys three
// sensors, breaks a link, and lets Tomo and ND-edge localize it.
//
//   $ ./quickstart
#include <iostream>

#include "core/algorithms.h"
#include "core/scfs.h"
#include "exp/runner.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"

using namespace netd;

int main() {
  // 1. A small internetwork: 2 cores, 2 tier-2s, 4 stubs (see
  //    topo::tiny_topology for the exact shape).
  sim::Network net(topo::tiny_topology());
  net.converge();
  const auto& topo = net.topology();
  std::cout << "Topology: " << topo.num_ases() << " ASes, "
            << topo.num_routers() << " routers, " << topo.num_links()
            << " links\n";

  // 2. Three sensors at stub ASes 4, 5 and 6.
  std::vector<probe::Sensor> sensors;
  for (std::uint32_t as : {4u, 5u, 6u}) {
    const topo::RouterId r = topo.as_of(topo::AsId{as}).routers.front();
    sensors.push_back(probe::Sensor{"s" + std::to_string(sensors.size()), r,
                                    topo::AsId{as}});
  }
  probe::Prober prober(net, sensors);

  // 3. Baseline full-mesh traceroutes (T−).
  const probe::Mesh before = prober.measure();
  std::cout << "\nT- paths:\n";
  for (const auto& p : before.paths) {
    std::cout << "  " << sensors[p.src].name << " -> " << sensors[p.dst].name
              << " [" << (p.ok ? "ok" : "FAIL") << "]:";
    for (const auto& h : p.hops) std::cout << " " << h.label;
    std::cout << "\n";
  }

  // 4. Break the first probed interdomain link and re-measure (T+).
  topo::LinkId victim;
  for (topo::LinkId l : before.probed_links()) {
    if (topo.link(l).interdomain) {
      victim = l;
      break;
    }
  }
  std::cout << "\nFailing link " << exp::link_key(topo, victim) << "\n";
  net.fail_link(victim);
  net.reconverge();
  const probe::Mesh after = prober.measure();
  std::size_t broken = 0;
  for (std::size_t k = 0; k < before.paths.size(); ++k) {
    if (before.paths[k].ok && !after.paths[k].ok) ++broken;
  }
  std::cout << "Broken sensor pairs: " << broken << " / "
            << before.paths.size() << "\n";

  // 5. Diagnose.
  const auto tomo = core::run_tomo(before, after);
  const auto nd = core::run_nd_edge(before, after);
  auto show = [&](const char* name, const core::AlgorithmOutput& out) {
    std::cout << "\n" << name << " hypothesis (" << out.result.links.size()
              << " links):\n";
    for (const auto& k : out.result.links) std::cout << "  " << k << "\n";
  };
  show("Tomo", tomo);
  show("ND-edge", nd);

  // For comparison: Duffield's single-source SCFS (the paper's Fig. 1
  // baseline) sees only the tree rooted at s0.
  const auto single_source = core::scfs(tomo.graph, 0);
  std::cout << "\nSCFS from s0 (" << single_source.links.size()
            << " links):\n";
  for (const auto& k : single_source.links) std::cout << "  " << k << "\n";

  std::cout << "\nActually failed: " << exp::link_key(topo, victim) << "\n";
  return 0;
}
