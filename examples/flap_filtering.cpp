// Robust detection of unreachability (paper §6).
//
// A link flap — down for one measurement round, back up the next — must
// not page the NOC. The detector raises an alarm only after several
// consecutive failed measurements; this example runs a flap and a real
// failure through it.
//
//   $ ./flap_filtering
#include <iostream>

#include "probe/detector.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"

using namespace netd;

int main() {
  sim::Network net(topo::tiny_topology());
  net.converge();
  const auto& topo = net.topology();

  std::vector<probe::Sensor> sensors;
  for (std::uint32_t as : {4u, 5u, 6u}) {
    sensors.push_back(probe::Sensor{
        "s" + std::to_string(sensors.size()),
        topo.as_of(topo::AsId{as}).routers.front(), topo::AsId{as}});
  }
  probe::Prober prober(net, sensors);
  probe::UnreachabilityDetector detector(/*threshold=*/3);

  // Pick stub 6's single uplink as the victim.
  topo::LinkId victim;
  for (const auto& l : topo.links()) {
    if (l.interdomain && (topo.as_of_router(l.a) == topo::AsId{6} ||
                          topo.as_of_router(l.b) == topo::AsId{6})) {
      victim = l.id;
      break;
    }
  }
  const auto snap = net.snapshot();

  auto round = [&](const char* label, bool link_up) {
    if (!link_up) {
      net.fail_link(victim);
      net.reconverge();
    }
    const auto fired = detector.observe(prober.measure());
    std::cout << label << ": " << (link_up ? "link up  " : "link DOWN")
              << " -> " << fired.size() << " new alarms, any_alarm="
              << (detector.any_alarm() ? "yes" : "no") << "\n";
    if (!link_up) net.restore(snap);
  };

  std::cout << "--- a transient flap (1 bad round) ---\n";
  round("round 1", true);
  round("round 2", false);  // flap
  round("round 3", true);   // recovered
  round("round 4", true);

  std::cout << "\n--- a real failure (persistent) ---\n";
  net.fail_link(victim);
  net.reconverge();
  for (int r = 1; r <= 4; ++r) {
    const auto fired = detector.observe(prober.measure());
    std::cout << "round " << r << ": link DOWN -> " << fired.size()
              << " new alarms, any_alarm="
              << (detector.any_alarm() ? "yes" : "no") << "\n";
  }
  std::cout << "\nThe flap never raised an alarm; the persistent failure "
               "did after 3 rounds — time to run NetDiagnoser.\n";
  return 0;
}
