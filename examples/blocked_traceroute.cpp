// Blocked traceroutes and Looking Glass servers (paper §3.4, Fig. 4).
//
// A transit AS blocks traceroute, so its routers show up as unidentified
// hops (stars). A link inside that AS fails. ND-bgpigp cannot name the
// failed link or AS; ND-LG maps the stars to ASes via Looking Glass AS
// paths, clusters the unidentified links, and blames the right AS.
//
//   $ ./blocked_traceroute
#include <iostream>

#include "core/algorithms.h"
#include "exp/runner.h"
#include "lg/looking_glass.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"

using namespace netd;

int main() {
  sim::Network net(topo::tiny_topology());
  net.converge();
  const auto& topo = net.topology();
  const topo::AsId operator_as{0};  // AS-X is core AS0
  net.set_operator_as(operator_as);

  // Sensors in stubs 4, 5, 6; tier-2 AS3 blocks traceroutes.
  std::vector<probe::Sensor> sensors;
  for (std::uint32_t as : {4u, 5u, 6u}) {
    sensors.push_back(probe::Sensor{
        "s" + std::to_string(sensors.size()),
        topo.as_of(topo::AsId{as}).routers.front(), topo::AsId{as}});
  }
  const std::uint32_t blocked_as = 3;
  probe::Prober prober(net, sensors, {blocked_as});
  const probe::Mesh before = prober.measure();

  std::cout << "T- paths as the troubleshooter sees them (AS" << blocked_as
            << " blocks traceroute):\n";
  for (const auto& p : before.paths) {
    std::cout << "  " << sensors[p.src].name << "->" << sensors[p.dst].name
              << ":";
    for (const auto& h : p.hops) std::cout << " " << h.label;
    std::cout << "\n";
  }

  // Looking Glass table from the converged state; every AS runs one here.
  const lg::LgTable table(net);
  std::set<std::uint32_t> avail;
  for (const auto& as : topo.ases()) avail.insert(as.id.value());
  const lg::LookingGlassService lgs(table, avail, operator_as);

  // Fail an intradomain link inside the blocked AS that probes cross.
  topo::LinkId victim;
  for (topo::LinkId l : before.probed_links()) {
    const auto& link = topo.link(l);
    if (!link.interdomain &&
        topo.as_of_router(link.a).value() == blocked_as) {
      victim = l;
      break;
    }
  }
  if (!victim.valid()) {
    std::cout << "no probed intra-AS" << blocked_as << " link; nothing to do\n";
    return 0;
  }
  std::cout << "\nFailing " << exp::link_key(topo, victim) << " (inside the "
            << "blocked AS)\n";
  net.start_recording();
  net.fail_link(victim);
  net.reconverge();
  const probe::Mesh after = prober.measure();

  const auto cp = exp::collect_control_plane(net);
  const auto bgpigp = core::run_nd_bgpigp(before, after, cp);
  const auto ndlg = core::run_nd_lg(before, after, cp, lgs, operator_as);

  auto verdict = [&](const char* name, const core::AlgorithmOutput& out) {
    std::cout << name << " blames ASes:";
    for (int a : out.result.ases) std::cout << " AS" << a;
    if (out.result.unknown_as_links > 0) {
      std::cout << " (+" << out.result.unknown_as_links << " unresolvable)";
    }
    std::cout << (out.result.ases.count(static_cast<int>(blocked_as)) != 0
                      ? "  <- includes the right AS"
                      : "  <- missed")
              << "\n";
  };
  verdict("ND-bgpigp", bgpigp);
  verdict("ND-LG    ", ndlg);
  return 0;
}
