// Figure 10: ND-edge vs ND-bgpigp, three link failures.
//
// Expected shape: identical sensitivity; ND-bgpigp's specificity equal or
// better (BGP withdrawals prune upstream candidates; IGP events pinpoint
// AS-X-internal failures exactly).
#include <iostream>

#include "common.h"

using namespace netd;
using exp::Algo;

int main() {
  bench::banner("Figure 10: ND-edge vs ND-bgpigp (three link failures)");

  auto cfg = bench::scaled_config(1000);
  cfg.num_link_failures = 3;
  exp::Runner runner(cfg);
  const auto rs = bench::timed_run("fig10_bgpigp", runner,
                                   {Algo::kNdEdge, Algo::kNdBgpIgp}, cfg);

  bench::print_cdf_table(
      "CDF of sensitivity",
      {{"ND-edge", bench::link_sensitivity(rs, Algo::kNdEdge)},
       {"ND-bgpigp", bench::link_sensitivity(rs, Algo::kNdBgpIgp)}});
  bench::print_cdf_table(
      "CDF of specificity",
      {{"ND-edge", bench::link_specificity(rs, Algo::kNdEdge)},
       {"ND-bgpigp", bench::link_specificity(rs, Algo::kNdBgpIgp)}},
      0.7, 1.0, 12);
  std::cout << "mean specificity: ND-edge="
            << bench::mean(bench::link_specificity(rs, Algo::kNdEdge))
            << " ND-bgpigp="
            << bench::mean(bench::link_specificity(rs, Algo::kNdBgpIgp))
            << "\nmean sensitivity: ND-edge="
            << bench::mean(bench::link_sensitivity(rs, Algo::kNdEdge))
            << " ND-bgpigp="
            << bench::mean(bench::link_sensitivity(rs, Algo::kNdBgpIgp))
            << "\n";
  std::cout << "\nExpected (paper): same sensitivity; ND-bgpigp specificity"
               " equal or better.\n";
  return 0;
}
