// Figure 8: CDF of ND-edge's specificity for a single link failure vs a
// single router misconfiguration.
//
// Expected shape: specificity > 0.9 throughout; higher (often 1.0) for
// misconfigurations, whose logical links let working paths exonerate many
// physical links.
#include <iostream>

#include "common.h"

using namespace netd;
using exp::Algo;

int main() {
  bench::banner("Figure 8: specificity of ND-edge");

  std::vector<std::pair<std::string, std::vector<double>>> series;
  {
    auto cfg = bench::scaled_config(800);
    cfg.num_link_failures = 1;
    exp::Runner runner(cfg);
    const auto rs =
        bench::timed_run("fig8_ndedge_link", runner, {Algo::kNdEdge}, cfg);
    series.push_back(
        {"1 link failure", bench::link_specificity(rs, Algo::kNdEdge)});
  }
  {
    auto cfg = bench::scaled_config(801);
    cfg.mode = exp::FailureMode::kMisconfig;
    exp::Runner runner(cfg);
    const auto rs =
        bench::timed_run("fig8_ndedge_misconfig", runner, {Algo::kNdEdge}, cfg);
    series.push_back(
        {"1 misconfig", bench::link_specificity(rs, Algo::kNdEdge)});
  }
  bench::print_cdf_table("CDF of ND-edge specificity", series, 0.7, 1.0, 12);
  std::cout << "mean: link failure=" << bench::mean(series[0].second)
            << " misconfig=" << bench::mean(series[1].second) << "\n";
  std::cout << "\nExpected (paper): both > 0.9; misconfiguration curve"
               " noticeably better.\n";
  return 0;
}
