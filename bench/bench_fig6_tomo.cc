// Figure 6: CDF of Tomo's sensitivity under (top) 1/2/3 link failures and
// (bottom) router misconfigurations.
//
// Expected shape: single failures ~always sensitivity 1; two/three
// simultaneous failures much lower; misconfigurations ~0 in ~90% of runs.
#include <iostream>

#include "common.h"

using namespace netd;
using exp::Algo;

int main() {
  bench::banner("Figure 6: Tomo under different failure scenarios");

  // Top: 1, 2, 3 link failures.
  std::vector<std::pair<std::string, std::vector<double>>> top;
  for (std::size_t x : {1u, 2u, 3u}) {
    auto cfg = bench::scaled_config(600 + x);
    cfg.num_link_failures = x;
    exp::Runner runner(cfg);
    const auto rs = bench::timed_run("fig6_tomo_links_x" + std::to_string(x),
                                     runner, {Algo::kTomo}, cfg);
    top.push_back({std::to_string(x) + " failure(s)",
                   bench::link_sensitivity(rs, Algo::kTomo)});
    std::cout << "link failures x=" << x << ": " << rs.size()
              << " diagnosable trials, mean sensitivity "
              << bench::mean(top.back().second) << "\n";
  }
  bench::print_cdf_table("CDF of Tomo sensitivity (link failures)", top);

  // Bottom: misconfiguration, and misconfiguration + 1 link failure.
  std::vector<std::pair<std::string, std::vector<double>>> bottom;
  {
    auto cfg = bench::scaled_config(660);
    cfg.mode = exp::FailureMode::kMisconfig;
    exp::Runner runner(cfg);
    const auto rs =
        bench::timed_run("fig6_tomo_misconfig", runner, {Algo::kTomo}, cfg);
    bottom.push_back({"1 misconfig", bench::link_sensitivity(rs, Algo::kTomo)});
  }
  {
    auto cfg = bench::scaled_config(661);
    cfg.mode = exp::FailureMode::kMisconfigPlusLink;
    cfg.num_link_failures = 1;
    exp::Runner runner(cfg);
    const auto rs = bench::timed_run("fig6_tomo_misconfig_link", runner,
                                     {Algo::kTomo}, cfg);
    bottom.push_back(
        {"misconfig+link", bench::link_sensitivity(rs, Algo::kTomo)});
  }
  bench::print_cdf_table("CDF of Tomo sensitivity (misconfigurations)",
                         bottom);
  std::cout << "\nExpected (paper): x=1 ~always 1.0; x=2,3 much lower;"
               " misconfigurations ~0 in ~90% of instances.\n";
  return 0;
}
