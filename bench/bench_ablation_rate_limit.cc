// Ablation: ICMP rate limiting and the retry remedy (§3.4).
//
// "almost all routers rate-limit ICMP responses ... This problem can be
// solved by repeating the traceroute for the source-destination pair."
// This bench quantifies both the damage (unidentified hops degrade
// ND-edge, which ignores unidentified links) and the remedy.
#include <iostream>

#include "common.h"
#include "core/solver.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"
#include "util/rng.h"

using namespace netd;

int main() {
  bench::banner("Ablation: ICMP rate limiting vs traceroute retries");

  sim::Network net(topo::generate(topo::GeneratorParams{}));
  net.converge();
  util::Rng rng(2500);
  const auto sensors = probe::place_sensors(
      net.topology(), probe::PlacementKind::kRandomStub, 10, rng);
  const auto snap = net.snapshot();

  const std::size_t trials = bench::env_or("ND_TRIALS", 25) *
                             bench::env_or("ND_PLACEMENTS", 4) / 2;
  util::Table t({"drop prob", "attempts", "mean sensitivity",
                 "mean specificity", "UH hops/mesh"});
  for (const double drop : {0.0, 0.1, 0.3}) {
    for (const std::size_t attempts : {std::size_t{1}, std::size_t{3}}) {
      if (drop == 0.0 && attempts > 1) continue;
      probe::Prober prober(net, sensors);
      prober.set_icmp_drop(drop, 99);
      const auto before = prober.measure_with_retries(attempts);
      std::size_t uh = 0;
      for (const auto& p : before.paths) {
        for (const auto& h : p.hops) {
          uh += h.kind == graph::NodeKind::kUnidentified;
        }
      }
      const auto pool = before.probed_links();
      util::Summary sens, spec;
      util::Rng frng(2501);
      for (std::size_t tr = 0; tr < trials; ++tr) {
        const auto victims = frng.sample(pool, 2);
        for (auto l : victims) net.fail_link(l);
        net.reconverge();
        const auto after = prober.measure_with_retries(attempts);
        bool invoked = false;
        for (std::size_t k = 0; k < before.paths.size(); ++k) {
          invoked = invoked || (before.paths[k].ok && !after.paths[k].ok);
        }
        if (invoked) {
          std::set<std::string> truth;
          for (auto l : victims) {
            truth.insert(exp::link_key(net.topology(), l));
          }
          const auto dg = core::build_diagnosis_graph(before, after, true);
          core::SolverOptions opt;
          opt.use_reroutes = true;
          const auto res = core::solve(dg, opt);
          const auto m = core::link_metrics(res.links, truth, dg.probed_keys);
          sens.add(m.sensitivity);
          spec.add(m.specificity);
        }
        net.restore(snap);
      }
      t.add_row({drop, static_cast<double>(attempts), sens.mean(),
                 spec.mean(), static_cast<double>(uh)});
    }
  }
  bench::emit_table("ablation icmp rate limiting", t);
  std::cout << "\nExpected: rate limiting hides hops and dents sensitivity;"
               " a few retries restore the clean-measurement numbers.\n";
  return 0;
}
