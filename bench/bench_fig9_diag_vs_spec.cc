// Figure 9: diagnosability vs specificity scatter.
//
// The paper varies the number of probing sources from 5 to 90 and plots
// one point per (placement, failure): specificity grows with the inferred
// graph's diagnosability and stays above ~0.75.
#include <iostream>

#include "common.h"
#include "probe/sensors.h"

using namespace netd;
using exp::Algo;

int main() {
  bench::banner("Figure 9: diagnosability vs specificity (ND-edge)");

  // Buckets over D(G); sensor count and placement strategy are both
  // varied to span the paper's 0.1..0.9 diagnosability range.
  std::vector<std::pair<double, double>> points;  // (diag, spec)
  const std::vector<probe::PlacementKind> kinds = {
      probe::PlacementKind::kRandomStub, probe::PlacementKind::kSameAs,
      probe::PlacementKind::kDistantAs, probe::PlacementKind::kDistantAsSplit};
  for (std::size_t n : {5u, 10u, 20u, 40u, 60u, 90u}) {
    for (const auto kind : kinds) {
      auto cfg = bench::scaled_config(900 + n);
      cfg.num_sensors = n;
      cfg.placement = kind;
      cfg.num_placements =
          std::max<std::size_t>(1, bench::env_or("ND_PLACEMENTS", 4) / 2);
      cfg.trials_per_placement =
          std::max<std::size_t>(3, bench::env_or("ND_TRIALS", 25) / 5);
      exp::Runner runner(cfg);
      const auto rs = runner.run({Algo::kNdEdge});
      for (const auto& r : rs) {
        points.push_back(
            {r.diagnosability, r.link.at(Algo::kNdEdge).specificity});
      }
    }
    std::cout << "sensors=" << n << ": done\n";
  }

  // Bucketize into a table (the scatter's trend line).
  util::Table t({"diagnosability bucket", "points", "mean specificity",
                 "min specificity"});
  for (double lo = 0.0; lo < 1.0; lo += 0.1) {
    util::Summary spec;
    for (const auto& [d, s] : points) {
      if (d >= lo && d < lo + 0.1) spec.add(s);
    }
    if (spec.empty()) continue;
    t.add_row({lo + 0.05, static_cast<double>(spec.count()), spec.mean(),
               spec.min()});
  }
  bench::emit_table("fig9 diagnosability vs specificity", t);
  std::cout << "\nExpected (paper): specificity increases with"
               " diagnosability; all points >= ~0.75.\n";
  return 0;
}
