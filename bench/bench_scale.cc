// Internet-scale solver benchmark: solve wall time, per-round time, and
// peak RSS vs. AS count, plus the bitset-kernel speedup over the
// reference scorer on identical inputs.
//
// BGP convergence is infeasible at these sizes, so the measurement
// substrate is probe::SyntheticProber (BFS shortest paths); both scorers
// consume the exact same prebuilt Demands instance, making the speedup
// column an apples-to-apples comparison of the greedy kernels alone
// (demand construction is shared work, timed in its own column; the JSON
// record also carries the end-to-end ratio with demands included).
//
// Environment:
//   ND_SCALE_ASES      comma-separated AS counts  (default "165,2000,10000")
//   ND_SCALE_SENSORS   sensor count (0 = scale with AS count)  (default 0)
//   ND_SCALE_FAILURES  links failed per scenario  (default 128)
//   ND_SCALE_REPS      timing repetitions (min; 0 = scale-aware default)
//   ND_SCALE_PLACEMENT probe::PlacementKind index (default random-stub)
//   ND_PERF_JSON       append one JSON record per (scale, preset) there
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "core/algorithms.h"
#include "core/solver.h"
#include "obs/registry.h"
#include "probe/synthetic.h"
#include "topo/random_internet.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace netd;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak RSS of this process in MiB (Linux: ru_maxrss is in KiB).
double peak_rss_mib() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

std::vector<std::size_t> scale_list() {
  const char* v = std::getenv("ND_SCALE_ASES");
  std::string s = (v != nullptr && *v != '\0') ? v : "165,2000,10000";
  std::vector<std::size_t> out;
  std::istringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
  }
  return out;
}

topo::RandomInternetParams params_for(std::size_t ases) {
  topo::RandomInternetParams p;
  p.num_tier1 = 5;
  // Transit tier grows with the AS count but stays far below the stub
  // count (the tier-2 peering loop is quadratic in num_tier2).
  p.num_tier2 = std::min<std::size_t>(400, 25 + ases / 100);
  p.num_stubs = ases > p.num_tier1 + p.num_tier2
                    ? ases - p.num_tier1 - p.num_tier2
                    : 1;
  p.tier1_routers = 10;
  p.tier2_routers = 4;
  p.seed = 42;
  return p;
}

/// The most-traversed T− links, strided so the failures spread across the
/// mesh instead of clustering on one path. Deterministic.
std::vector<topo::LinkId> pick_failures(const probe::Mesh& before,
                                        std::size_t num_links,
                                        std::size_t count) {
  std::vector<std::uint32_t> uses(num_links, 0);
  for (const auto& p : before.paths) {
    if (!p.ok) continue;
    for (topo::LinkId l : p.links) ++uses[l.value()];
  }
  std::vector<std::uint32_t> order(num_links);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return uses[a] != uses[b] ? uses[a] > uses[b] : a < b;
  });
  std::vector<topo::LinkId> out;
  for (std::size_t i = 0; i * 3 < order.size() && out.size() < count; ++i) {
    if (uses[order[i * 3]] == 0) break;
    out.push_back(topo::LinkId{order[i * 3]});
  }
  return out;
}

struct PresetRun {
  const char* name;
  core::SolverOptions opt;
  bool needs_cp;
};

int max_round(const core::Result& r) {
  int m = 0;
  for (const auto& rl : r.ranked) m = std::max(m, rl.round);
  return m + 1;
}

void emit_record(const std::string& name, std::size_t ases,
                 std::size_t sensors, std::size_t edges,
                 std::size_t failure_sets, double demands_ms, double solve_ms,
                 double ref_ms, int rounds, double rss_mib) {
  const char* path = std::getenv("ND_PERF_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ofstream os(path, std::ios::app);
  if (!os) return;
  os << "{\"bench\":\"" << name << "\",\"ases\":" << ases
     << ",\"sensors\":" << sensors << ",\"edges\":" << edges
     << ",\"failure_sets\":" << failure_sets
     << ",\"demands_ms\":" << demands_ms << ",\"wall_ms\":" << solve_ms
     << ",\"ref_ms\":" << ref_ms
     << ",\"speedup\":" << (solve_ms > 0.0 ? ref_ms / solve_ms : 0.0)
     << ",\"e2e_speedup\":"
     << (demands_ms + solve_ms > 0.0
             ? (demands_ms + ref_ms) / (demands_ms + solve_ms)
             : 0.0)
     << ",\"rounds\":" << rounds
     << ",\"ms_per_round\":" << (rounds > 0 ? solve_ms / rounds : 0.0)
     << ",\"rss_mib\":" << rss_mib << "}\n";
}

}  // namespace

int main() {
  bench::banner("Internet-scale solver: wall time / per-round time / RSS");
  const std::size_t max_sensors = bench::env_or("ND_SCALE_SENSORS", 0);
  const std::size_t num_failures = bench::env_or("ND_SCALE_FAILURES", 128);
  const std::size_t reps_env = bench::env_or("ND_SCALE_REPS", 0);

  util::Table table({"scale/preset", "edges", "fail_sets", "demands_ms",
                     "solve_ms", "ref_ms", "speedup", "rounds", "rss_mib"});

  for (std::size_t ases : scale_list()) {
    // Min-of-N needs more draws where a single solve is sub-millisecond,
    // or the regression gate flakes on scheduler noise at small scales.
    const std::size_t reps =
        reps_env != 0 ? reps_env : (ases <= 500 ? 15 : ases <= 5000 ? 7 : 3);
    const auto t_gen0 = now_ms();
    topo::Topology topo = topo::random_internet(params_for(ases));
    util::Rng rng(7);
    // ND_SCALE_SENSORS=0 (default) scales the sensor count with the AS
    // count (~300 at 10k ASes, where the solve cost is dominated by the
    // scorer rather than fixed setup); a nonzero value is taken verbatim.
    const std::size_t n_sensors =
        max_sensors != 0 ? max_sensors
                         : std::max<std::size_t>(8, 16 + ases / 35);
    // Random stub placement by default: the split/adjacent placements
    // concentrate sensors so heavily that BFS routes around every failure
    // and the solver sees zero failure sets at Internet scale.
    const auto placement = static_cast<probe::PlacementKind>(
        bench::env_or("ND_SCALE_PLACEMENT",
                      static_cast<std::size_t>(
                          probe::PlacementKind::kRandomStub)));
    auto sensors = probe::place_sensors(topo, placement, n_sensors, rng);
    probe::SyntheticProber prober(topo, std::move(sensors));
    const probe::Mesh before = prober.measure();

    // Fail the busiest links and re-measure (the prober's frozen adjacency
    // is untouched by up/down state; usability is read per measure call).
    const auto broken = pick_failures(before, topo.num_links(), num_failures);
    for (topo::LinkId l : broken) topo.set_link_up(l, false);
    const probe::Mesh after = prober.measure();
    const auto gen_ms = now_ms() - t_gen0;
    std::cout << "[scale] " << ases << " ASes: " << topo.num_routers()
              << " routers, " << topo.num_links() << " links, " << n_sensors
              << " sensors, " << broken.size() << " failures (setup "
              << gen_ms << " ms)\n";

    const core::DiagnosisGraph dg =
        core::build_diagnosis_graph(before, after, /*logical_links=*/true);
    const std::size_t failing_pairs = static_cast<std::size_t>(
        std::count_if(dg.paths.begin(), dg.paths.end(),
                      [](const core::PathObs& p) { return !p.ok_after; }));

    // Control-plane observations from ground truth: IGP down events for
    // failed intradomain links, withdrawals (both directions) for failed
    // interdomain links toward every unreachable destination AS.
    core::ControlPlaneObs cp;
    {
      // One withdrawal per (session direction, withdrawn prefix), as BGP
      // would send — the per-pair loop below would otherwise duplicate
      // them per failing sensor pair.
      std::set<int> dead_asns;
      for (const auto& p : dg.paths) {
        if (!p.ok_after && p.dest_asn >= 0) dead_asns.insert(p.dest_asn);
      }
      for (topo::LinkId l : broken) {
        const auto& lk = topo.link(l);
        const std::string na = topo.router(lk.a).name;
        const std::string nb = topo.router(lk.b).name;
        if (!lk.interdomain) {
          cp.igp_down_keys.push_back(core::undirected_key(na, nb));
        } else {
          for (int asn : dead_asns) {
            cp.withdrawals.push_back({na + ">" + nb, asn});
            cp.withdrawals.push_back({nb + ">" + na, asn});
          }
        }
      }
    }

    const std::vector<PresetRun> presets = {
        {"tomo", core::tomo_options(), false},
        {"nd_edge", core::nd_edge_options(), false},
        {"nd_bgpigp", core::nd_bgpigp_options(), true},
        {"nd_lg", core::nd_lg_options(), true},
    };
    const core::UhTagMap no_tags;

    for (const auto& pr : presets) {
      const core::ControlPlaneObs* cpp = pr.needs_cp ? &cp : nullptr;
      double solve_ms = 1e300, ref_ms = 1e300, demands_ms = 1e300;
      core::Result fast, ref;
      for (std::size_t r = 0; r < reps; ++r) {
        // Both scorers run on the same prebuilt instance, so the speedup
        // column compares the kernels alone; demand construction (shared,
        // timed separately) folds into the e2e ratio in the JSON record.
        const auto td = now_ms();
        const core::Demands demands = core::build_demands(dg, pr.opt, cpp);
        demands_ms = std::min(demands_ms, now_ms() - td);
        const auto t0 = now_ms();
        fast = core::solve(dg, pr.opt, demands, cpp, &no_tags);
        solve_ms = std::min(solve_ms, now_ms() - t0);
        const auto t1 = now_ms();
        ref = core::solve_reference(dg, pr.opt, demands, cpp, &no_tags);
        ref_ms = std::min(ref_ms, now_ms() - t1);
      }
      if (fast.links != ref.links || fast.ranked.size() != ref.ranked.size()) {
        std::cerr << "FATAL: solve() and solve_reference() disagree at "
                  << ases << " ASes, preset " << pr.name << "\n";
        return 1;
      }
      const int rounds = max_round(fast);
      const double rss = peak_rss_mib();
      const std::string name = "scale_" + std::to_string(ases) + "_" + pr.name;
      table.add_row(std::to_string(ases) + "/" + pr.name,
                    {static_cast<double>(dg.edges.size()),
                     static_cast<double>(failing_pairs), demands_ms, solve_ms,
                     ref_ms, solve_ms > 0 ? ref_ms / solve_ms : 0.0,
                     static_cast<double>(rounds), rss});
      emit_record(name, ases, n_sensors, dg.edges.size(), failing_pairs,
                  demands_ms, solve_ms, ref_ms, rounds, rss);
    }
  }
  bench::emit_table("Internet-scale solver cost", table);
  // ND_SCALE_METRICS=1: dump the solver instruments (group/word counts,
  // cache hit rates) for kernel-shape debugging.
  if (bench::env_or("ND_SCALE_METRICS", 0) != 0) {
    std::cout << obs::render_prometheus(obs::Registry::global().collect());
  }
  return 0;
}
