// Figure 7: sensitivity of Tomo vs ND-edge for (top) three link failures
// and (bottom) misconfiguration + link failure.
//
// Expected shape: ND-edge ~always sensitivity 1; Tomo clearly lower.
#include <iostream>

#include "common.h"

using namespace netd;
using exp::Algo;

int main() {
  bench::banner("Figure 7: sensitivity of Tomo vs ND-edge");

  {
    auto cfg = bench::scaled_config(700);
    cfg.num_link_failures = 3;
    exp::Runner runner(cfg);
    const auto rs = bench::timed_run("fig7_ndedge_links", runner,
                                     {Algo::kTomo, Algo::kNdEdge}, cfg);
    bench::print_cdf_table(
        "CDF of sensitivity, three link failures",
        {{"Tomo", bench::link_sensitivity(rs, Algo::kTomo)},
         {"ND-edge", bench::link_sensitivity(rs, Algo::kNdEdge)}});
    std::cout << "mean: Tomo="
              << bench::mean(bench::link_sensitivity(rs, Algo::kTomo))
              << " ND-edge="
              << bench::mean(bench::link_sensitivity(rs, Algo::kNdEdge))
              << "\n";
  }
  {
    auto cfg = bench::scaled_config(701);
    cfg.mode = exp::FailureMode::kMisconfigPlusLink;
    cfg.num_link_failures = 1;
    exp::Runner runner(cfg);
    const auto rs = bench::timed_run("fig7_ndedge_misconfig_link", runner,
                                     {Algo::kTomo, Algo::kNdEdge}, cfg);
    bench::print_cdf_table(
        "CDF of sensitivity, misconfiguration + link failure",
        {{"Tomo", bench::link_sensitivity(rs, Algo::kTomo)},
         {"ND-edge", bench::link_sensitivity(rs, Algo::kNdEdge)}});
    std::cout << "mean: Tomo="
              << bench::mean(bench::link_sensitivity(rs, Algo::kTomo))
              << " ND-edge="
              << bench::mean(bench::link_sensitivity(rs, Algo::kNdEdge))
              << "\n";
  }
  std::cout << "\nExpected (paper): ND-edge sensitivity ~always 1;"
               " Tomo much lower in both scenarios.\n";
  return 0;
}
