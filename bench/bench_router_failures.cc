// §5.2 (text): router failures / SRLGs.
//
// "We find that in each simulation run, ND-edge is able to identify the
// router that failed" — the hypothesis contains at least one link of the
// failed router; link-level sensitivity/specificity resemble the
// three-link-failure case.
#include <iostream>

#include "common.h"

using namespace netd;
using exp::Algo;

int main() {
  bench::banner("Router failures (SRLG) — §5.2 text");

  auto cfg = bench::scaled_config(1500);
  cfg.mode = exp::FailureMode::kRouter;
  exp::Runner runner(cfg);
  const auto rs = runner.run({Algo::kNdEdge});

  std::size_t detected = 0;
  for (const auto& r : rs) detected += r.router_detected;
  util::Table t({"trials", "router detected", "detection rate",
                 "mean link sens", "mean link spec"});
  t.add_row({static_cast<double>(rs.size()), static_cast<double>(detected),
             rs.empty() ? 0.0 : static_cast<double>(detected) / rs.size(),
             bench::mean(bench::link_sensitivity(rs, Algo::kNdEdge)),
             bench::mean(bench::link_specificity(rs, Algo::kNdEdge))});
  bench::emit_table("router failures srlg", t);
  std::cout << "\nExpected (paper): detection rate ~1.0; link metrics"
               " similar to the three-link-failure scenario.\n";
  return 0;
}
