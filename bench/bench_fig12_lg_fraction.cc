// Figure 12: the effect of Looking Glass availability.
//
// AS-sensitivity of ND-LG as the fraction of ASes providing an LG grows
// from 5% to 100%, for f_b in {0.25, 0.5, 0.75}; ND-bgpigp's horizontal
// lines (~1 - f_b) for reference. Expected shape: steep gain from small
// LG fractions, diminishing returns past ~50%.
#include <iostream>

#include "common.h"

using namespace netd;
using exp::Algo;

int main() {
  bench::banner("Figure 12: Looking Glass availability");

  const std::vector<double> fbs = {0.25, 0.5, 0.75};
  util::Table t({"LG fraction", "ND-LG fb=0.25", "ND-LG fb=0.50",
                 "ND-LG fb=0.75"});
  std::vector<double> reference;
  for (double lg_frac : {0.05, 0.15, 0.3, 0.5, 0.75, 1.0}) {
    std::vector<double> row = {lg_frac};
    for (double fb : fbs) {
      auto cfg = bench::scaled_config(1200 + static_cast<int>(fb * 100) +
                                      static_cast<int>(lg_frac * 10));
      cfg.frac_blocked = fb;
      cfg.frac_lg = lg_frac;
      exp::Runner runner(cfg);
      const auto rs = runner.run({Algo::kNdLg});
      row.push_back(bench::mean(bench::as_sensitivity(rs, Algo::kNdLg)));
    }
    t.add_row(row);
  }
  bench::emit_table("fig12 lg availability", t);

  util::Table ref({"f_b", "ND-bgpigp AS-sens (horizontal line)"});
  for (double fb : fbs) {
    auto cfg = bench::scaled_config(1290 + static_cast<int>(fb * 100));
    cfg.frac_blocked = fb;
    exp::Runner runner(cfg);
    const auto rs = runner.run({Algo::kNdBgpIgp});
    ref.add_row({fb, bench::mean(bench::as_sensitivity(rs, Algo::kNdBgpIgp))});
  }
  bench::emit_table("fig12 ndbgpigp reference", ref);
  std::cout << "\nExpected (paper): large gain already at small LG"
               " fractions; diminishing returns past ~50%; ND-bgpigp flat"
               " near 1-f_b.\n";
  return 0;
}
