// Planned vs. random sensor placement at equal budget: end-to-end
// diagnosis sensitivity/specificity through the full experiment pipeline,
// plus planner wall time and objective headroom at Internet scale.
//
// The comparison presets run the paper's §5 protocol twice with identical
// seeds — once with the paper's random placement, once with
// PlacementStrategy::kPlanned (draw a 4x candidate pool, deploy the
// plan::Planner-chosen budget subset) — so the only difference between
// the two runs is which sensors get deployed. Failures come from the
// BGP/IGP simulator, where unreachability is genuine (policy routing, not
// BFS reroute). ND-edge (the paper's algorithm) is the headline; boolean
// tomography means are recorded alongside. The sparse preset shrinks the
// budget to 6 sensors, where placement quality moves sensitivity too
// (at budget 10 every strategy detects single failures).
//
// The scale preset times Planner::plan() on the PR 6 10k-AS Internet
// generator and reports the objective f(S) = distinct + identifiable of
// the planned placement against random budget-subsets of the same pool
// (the roadmap pins single-digit-seconds planning at this scale).
//
// Environment:
//   ND_PLACEMENTS / ND_TRIALS  protocol size (see common.h)
//   ND_PLAN_REPS               scale-preset timing repetitions (min; 3)
//   ND_PERF_JSON               append one JSON record per preset there
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "common.h"
#include "exp/runner.h"
#include "plan/planner.h"
#include "probe/sensors.h"
#include "topo/random_internet.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace netd;
using exp::Algo;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

topo::RandomInternetParams inet_params(std::size_t ases) {
  topo::RandomInternetParams p;
  p.num_tier1 = 5;
  p.num_tier2 = std::min<std::size_t>(400, 25 + ases / 100);
  p.num_stubs = ases > p.num_tier1 + p.num_tier2
                    ? ases - p.num_tier1 - p.num_tier2
                    : 1;
  p.tier1_routers = 10;
  p.tier2_routers = 4;
  p.seed = 42;
  return p;
}

struct Means {
  double tomo_sens = 0.0;
  double tomo_spec = 0.0;
  double nd_sens = 0.0;
  double nd_spec = 0.0;
};

Means run_strategy(exp::ScenarioConfig cfg, exp::PlacementStrategy strategy,
                   const std::string& bench_name) {
  cfg.placement_strategy = strategy;
  exp::Runner runner(cfg);
  const auto rs =
      bench::timed_run(bench_name, runner, {Algo::kTomo, Algo::kNdEdge}, cfg);
  Means m;
  m.tomo_sens = bench::mean(bench::link_sensitivity(rs, Algo::kTomo));
  m.tomo_spec = bench::mean(bench::link_specificity(rs, Algo::kTomo));
  m.nd_sens = bench::mean(bench::link_sensitivity(rs, Algo::kNdEdge));
  m.nd_spec = bench::mean(bench::link_specificity(rs, Algo::kNdEdge));
  return m;
}

void emit_compare(const std::string& name, std::size_t failures,
                  std::size_t sensors, const Means& planned,
                  const Means& random) {
  const char* path = std::getenv("ND_PERF_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ofstream os(path, std::ios::app);
  if (!os) return;
  os << "{\"bench\":\"" << name << "\",\"failures\":" << failures
     << ",\"sensors\":" << sensors
     << ",\"planned_sens\":" << planned.nd_sens
     << ",\"planned_spec\":" << planned.nd_spec
     << ",\"random_sens\":" << random.nd_sens
     << ",\"random_spec\":" << random.nd_spec
     << ",\"planned_tomo_sens\":" << planned.tomo_sens
     << ",\"planned_tomo_spec\":" << planned.tomo_spec
     << ",\"random_tomo_sens\":" << random.tomo_sens
     << ",\"random_tomo_spec\":" << random.tomo_spec << "}\n";
}

void emit_scale(const std::string& name, std::size_t ases, std::size_t budget,
                std::size_t pool, double objective, double random_objective,
                double plan_ms) {
  const char* path = std::getenv("ND_PERF_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ofstream os(path, std::ios::app);
  if (!os) return;
  os << "{\"bench\":\"" << name << "\",\"ases\":" << ases
     << ",\"budget\":" << budget << ",\"pool\":" << pool
     << ",\"objective\":" << objective
     << ",\"random_objective\":" << random_objective
     << ",\"wall_ms\":" << plan_ms << "}\n";
}

}  // namespace

int main() {
  bench::banner("Probe planning: planned vs random placement at equal budget");

  util::Table table({"preset", "nd_sens", "nd_spec", "tomo_sens",
                     "tomo_spec"});
  struct Compare {
    const char* name;
    std::size_t failures;
    std::size_t sensors;  ///< 0 = the protocol default (10)
    std::uint64_t seed;
  };
  for (const Compare& c : {Compare{"plan_1link", 1, 0, 900},
                           Compare{"plan_3link", 3, 0, 901},
                           Compare{"plan_sparse", 2, 6, 902}}) {
    auto cfg = bench::scaled_config(c.seed);
    cfg.num_link_failures = c.failures;
    if (c.sensors != 0) cfg.num_sensors = c.sensors;
    const Means planned = run_strategy(cfg, exp::PlacementStrategy::kPlanned,
                                       std::string(c.name) + "_planned");
    const Means random = run_strategy(cfg, exp::PlacementStrategy::kRandom,
                                      std::string(c.name) + "_random");
    table.add_row(std::string(c.name) + "/planned",
                  {planned.nd_sens, planned.nd_spec, planned.tomo_sens,
                   planned.tomo_spec});
    table.add_row(std::string(c.name) + "/random",
                  {random.nd_sens, random.nd_spec, random.tomo_sens,
                   random.tomo_spec});
    emit_compare(c.name, c.failures, c.sensors != 0 ? c.sensors : 10, planned,
                 random);
  }
  bench::emit_table("Planned vs random placement (ND-edge headline)", table);

  // ---- Internet-scale planner cost --------------------------------------
  const std::size_t reps = bench::env_or("ND_PLAN_REPS", 3);
  const std::size_t ases = 10000, budget = 16, pool_n = 64;
  topo::Topology topo = topo::random_internet(inet_params(ases));
  util::Rng rng(11);
  const auto pool = probe::place_sensors(
      topo, probe::PlacementKind::kRandomStub, pool_n, rng);
  plan::PlannerConfig pcfg;
  pcfg.budget = budget;
  pcfg.num_threads = 0;
  pcfg.measure_report = false;
  plan::Planner planner(topo, pool, pcfg);
  double plan_ms = 1e300;
  plan::PlanResult plan;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = now_ms();
    plan = planner.plan();
    plan_ms = std::min(plan_ms, now_ms() - t0);
  }
  double rand_obj = 0.0;
  const std::size_t rdraws = 5;
  std::vector<std::size_t> all(pool.size());
  std::iota(all.begin(), all.end(), 0u);
  for (std::size_t d = 0; d < rdraws; ++d) {
    rand_obj += planner.evaluate(rng.sample(all, budget));
  }
  rand_obj /= static_cast<double>(rdraws);
  std::cout << "\n[plan] inet10000: objective " << plan.objective
            << " vs random " << rand_obj << ", plan " << plan_ms << " ms\n";
  emit_scale("plan_inet10000", ases, budget, pool_n, plan.objective, rand_obj,
             plan_ms);
  return 0;
}
