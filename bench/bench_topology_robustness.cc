// Robustness check: do the headline results depend on the specific
// evaluation topology?
//
// Reruns the Fig. 7 comparison (Tomo vs ND-edge, three link failures) and
// the misconfiguration scenario on three very different substrates: the
// paper's Abilene/GEANT/WIDE-derived 165-AS topology and two seeds of an
// independent random-Internet family (tier-1 clique, preferential-
// attachment stubs, random IGP weights, ECMP-rich meshes).
#include <iostream>

#include "common.h"
#include "topo/random_internet.h"

using namespace netd;
using exp::Algo;

namespace {

void run_on(const char* name, std::optional<topo::Topology> topology,
            util::Table& links_table, util::Table& misconfig_table) {
  {
    auto cfg = bench::scaled_config(2400);
    cfg.num_link_failures = 3;
    auto runner = topology ? exp::Runner(*topology, cfg) : exp::Runner(cfg);
    const auto rs = runner.run({Algo::kTomo, Algo::kNdEdge});
    links_table.add_row(
        name, {static_cast<double>(rs.size()),
               bench::mean(bench::link_sensitivity(rs, Algo::kTomo)),
               bench::mean(bench::link_sensitivity(rs, Algo::kNdEdge))});
  }
  {
    auto cfg = bench::scaled_config(2401);
    cfg.mode = exp::FailureMode::kMisconfig;
    auto runner = topology ? exp::Runner(*topology, cfg) : exp::Runner(cfg);
    const auto rs = runner.run({Algo::kTomo, Algo::kNdEdge});
    misconfig_table.add_row(
        name, {static_cast<double>(rs.size()),
               bench::mean(bench::link_sensitivity(rs, Algo::kTomo)),
               bench::mean(bench::link_sensitivity(rs, Algo::kNdEdge))});
  }
}

}  // namespace

int main() {
  bench::banner("Topology robustness: paper topology vs random Internets");

  util::Table links({"topology", "episodes", "Tomo sens", "ND-edge sens"});
  util::Table mis({"topology", "episodes", "Tomo sens", "ND-edge sens"});

  run_on("paper (165 AS)", std::nullopt, links, mis);
  for (std::uint64_t seed : {1ull, 2ull}) {
    topo::RandomInternetParams p;
    p.seed = seed;
    const std::string name = "random #" + std::to_string(seed);
    run_on(name.c_str(), topo::random_internet(p), links, mis);
  }

  std::cout << "\nThree link failures:\n";
  bench::emit_table("robustness three link failures", links);
  std::cout << "\nOne misconfiguration:\n";
  bench::emit_table("robustness misconfiguration", mis);
  std::cout << "\nExpected: ND-edge >> Tomo on every substrate; the gap is"
               " a property of the algorithm, not of the topology.\n";
  return 0;
}
