// Service-layer benchmark: how much the wire costs.
//
// Records one exp::Runner trace, then times four stages of the service
// stack on the identical input:
//   svc_record_trace       runner episodes -> JSONL (codec write path)
//   svc_codec_reparse      parse + reserialize every trace line
//   svc_replay_in_process  trace -> fresh Troubleshooter, no socket
//   svc_replay_socket      the same replay through a live unix-socket
//                          server via svc::Client
// The in-process/socket pair bounds the protocol + dispatch overhead per
// observation round. Emits the usual ND_PERF_JSON records.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "common.h"
#include "obs/events.h"
#include "obs/span.h"
#include "svc/client.h"
#include "svc/journal.h"
#include "svc/json.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "svc/socket.h"
#include "svc/trace.h"

using namespace netd;

namespace {

class Timer {
 public:
  Timer() : t0_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// Same record shape as bench::timed_run so BENCH_svc.json rows align
/// with the figure benchmarks'.
void perf(const std::string& bench, double wall_ms, std::size_t threads,
          const exp::ScenarioConfig& cfg) {
  std::cout << "[perf] " << bench << ": " << wall_ms
            << " ms  (threads=" << threads << ")\n";
  if (const char* path = std::getenv("ND_PERF_JSON");
      path != nullptr && *path != '\0') {
    std::ofstream os(path, std::ios::app);
    if (os) {
      os << "{\"bench\":\"" << bench << "\",\"wall_ms\":" << wall_ms
         << ",\"threads\":" << threads
         << ",\"placements\":" << cfg.num_placements
         << ",\"trials\":" << cfg.trials_per_placement << "}\n";
    }
  }
}

}  // namespace

int main() {
  bench::banner("Service layer: trace codec and replay, in-process vs socket");

  // ND_BENCH_TRACE=1 arms the full observability path: the span sink
  // records every server-side span and --slow-request-ms 1 pushes nearly
  // every request into the event ring. The obs overhead gate runs the
  // bench this way on the NETD_OBS=ON tree so the ON-vs-OFF comparison
  // prices the instrumented hot path, not just dormant counters.
  const char* trace_env = std::getenv("ND_BENCH_TRACE");
  const bool trace_on = trace_env != nullptr && *trace_env == '1';
  if (trace_on) {
    obs::TraceSink::install();
    std::cout << "  tracing: span sink + event ring armed"
                 " (ND_BENCH_TRACE=1)\n";
  }

  auto cfg = bench::scaled_config(9100);
  cfg.num_link_failures = 1;
  exp::Runner runner(cfg);

  svc::SessionConfig scfg;
  scfg.alarm_threshold = 2;

  // Record (timed): the write path of the codec plus the live diagnoses.
  std::ostringstream trace_os;
  std::string error;
  Timer t_record;
  const auto episodes = runner.record_trace(trace_os, scfg, &error);
  const double record_ms = t_record.ms();
  if (!episodes.has_value()) {
    std::cerr << "record_trace failed: " << error << "\n";
    return 1;
  }
  const std::string jsonl = trace_os.str();
  perf("svc_record_trace", record_ms, 1, cfg);

  // Codec: parse + reserialize every line; byte identity is pinned by the
  // tests, here we only pay for it.
  std::size_t lines = 0;
  {
    Timer t;
    std::istringstream is(jsonl);
    std::string line;
    std::size_t bytes = 0;
    while (std::getline(is, line)) {
      ++lines;
      const auto j = svc::Json::parse(line, &error);
      if (!j.has_value()) {
        std::cerr << "trace line failed to parse: " << error << "\n";
        return 1;
      }
      bytes += j->dump().size();
    }
    perf("svc_codec_reparse", t.ms(), 1, cfg);
    std::cout << "  trace: " << *episodes << " episodes, " << lines
              << " lines, " << bytes << " bytes\n";
  }

  // Replay without a socket: pure Troubleshooter re-execution.
  std::istringstream is(jsonl);
  const auto records = svc::read_trace(is, &error);
  if (!records.has_value()) {
    std::cerr << "read_trace failed: " << error << "\n";
    return 1;
  }
  {
    Timer t;
    const auto result = svc::replay_in_process(*records);
    const double ms = t.ms();
    if (!result.ok()) {
      std::cerr << "in-process replay diverged: " << result.mismatches[0]
                << "\n";
      return 1;
    }
    perf("svc_replay_in_process", ms, 1, cfg);
  }

  // Replay across a real unix socket: protocol + dispatch overhead on top.
  const std::string sock_path =
      "/tmp/bench_svc." + std::to_string(::getpid()) + ".sock";
  svc::Server::Options opts;
  opts.endpoint.kind = svc::Endpoint::Kind::kUnix;
  opts.endpoint.path = sock_path;
  opts.num_threads = 2;
  if (trace_on) opts.slow_request_ms = 1;
  svc::Server server(opts);
  if (!server.start(&error)) {
    std::cerr << "server start failed: " << error << "\n";
    return 1;
  }
  {
    auto client = svc::Client::connect(server.endpoint(), &error);
    if (!client.has_value()) {
      std::cerr << "connect failed: " << error << "\n";
      return 1;
    }
    Timer t;
    const auto result = svc::replay_through(*client, "bench", *records);
    const double ms = t.ms();
    if (!result.ok()) {
      std::cerr << "socket replay diverged: " << result.mismatches[0] << "\n";
      return 1;
    }
    perf("svc_replay_socket", ms, opts.num_threads, cfg);
    std::cout << "  replayed " << result.rounds << " rounds, "
              << result.diagnoses << " diagnoses\n";
  }
  server.stop();
  std::remove(sock_path.c_str());

  // The same replay with the full resilience stack armed (deadlines,
  // retries, seq stamping) but no faults: what the robustness layer costs
  // on a healthy wire.
  svc::Server::Options ropts;
  ropts.endpoint.kind = svc::Endpoint::Kind::kUnix;
  ropts.endpoint.path = sock_path;
  ropts.num_threads = 2;
  ropts.idle_timeout_ms = 30000;
  ropts.max_pending = 64;
  if (trace_on) ropts.slow_request_ms = 1;
  svc::Server resilient(ropts);
  if (!resilient.start(&error)) {
    std::cerr << "server start failed: " << error << "\n";
    return 1;
  }
  {
    svc::Client::Options copts;
    copts.connect_timeout_ms = 5000;
    copts.request_timeout_ms = 30000;
    copts.max_retries = 3;
    auto client = svc::Client::connect(resilient.endpoint(), copts, &error);
    if (!client.has_value()) {
      std::cerr << "connect failed: " << error << "\n";
      return 1;
    }
    Timer t;
    const auto result = svc::replay_through(*client, "bench-resilient",
                                            *records);
    const double ms = t.ms();
    if (!result.ok()) {
      std::cerr << "resilient replay diverged: " << result.mismatches[0]
                << "\n";
      return 1;
    }
    perf("svc_replay_socket_resilient", ms, ropts.num_threads, cfg);
  }
  resilient.stop();
  std::remove(sock_path.c_str());

  // The durability tax: the same replay with a per-session write-ahead
  // journal armed, once per fsync policy. kBatch pays serialization +
  // write(2) per observation; kAlways adds an fsync(2) per record and is
  // the worst case.
  for (const svc::FsyncPolicy policy :
       {svc::FsyncPolicy::kBatch, svc::FsyncPolicy::kAlways}) {
    const std::string state_dir =
        "/tmp/bench_svc_state." + std::to_string(::getpid()) + "." +
        svc::to_string(policy);
    svc::Server::Options dopts;
    dopts.endpoint.kind = svc::Endpoint::Kind::kUnix;
    dopts.endpoint.path = sock_path;
    dopts.num_threads = 2;
    dopts.state_dir = state_dir;
    dopts.fsync = policy;
    if (trace_on) dopts.slow_request_ms = 1;
    svc::Server durable(dopts);
    if (!durable.start(&error)) {
      std::cerr << "durable server start failed: " << error << "\n";
      return 1;
    }
    {
      auto client = svc::Client::connect(durable.endpoint(), &error);
      if (!client.has_value()) {
        std::cerr << "connect failed: " << error << "\n";
        return 1;
      }
      Timer t;
      const auto result = svc::replay_through(*client, "bench-durable",
                                              *records);
      const double ms = t.ms();
      if (!result.ok()) {
        std::cerr << "durable replay diverged: " << result.mismatches[0]
                  << "\n";
        return 1;
      }
      perf(std::string("svc_replay_socket_durable_") + svc::to_string(policy),
           ms, dopts.num_threads, cfg);
    }
    durable.stop();
    std::remove(sock_path.c_str());
    const std::string cleanup = "rm -rf '" + state_dir + "'";
    if (std::system(cleanup.c_str()) != 0) {
      std::cerr << "state-dir cleanup failed\n";
    }
  }

  if (trace_on) {
    std::cout << "  tracing: " << obs::TraceSink::snapshot().size()
              << " spans recorded, "
              << obs::EventRing::total_recorded() << " ring events\n";
    obs::TraceSink::uninstall();
  }

  std::cout << "\nExpected: socket replay tracks in-process replay within a"
               " small constant factor; the gap is the wire + dispatch cost"
               " per round. The resilient variant (deadlines + retry"
               " stamping, no faults) should sit on top of svc_replay_socket"
               " within noise. Durable replay adds the journal write per"
               " round (kBatch) or a full fsync per round (kAlways).\n";
  return 0;
}
