// google-benchmark micro-benchmarks: raw algorithm cost on the paper-scale
// topology (BGP convergence, traceroute mesh, graph build, each diagnosis
// algorithm).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "core/algorithms.h"
#include "core/diagnosability.h"
#include "exp/runner.h"
#include "lg/looking_glass.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"
#include "util/rng.h"

using namespace netd;

namespace {

/// Shared fixture state: one converged paper-scale network with a failure
/// episode baked in.
struct Episode {
  sim::Network net;
  std::vector<probe::Sensor> sensors;
  probe::Mesh before, after;
  core::ControlPlaneObs cp;

  explicit Episode(std::size_t num_sensors)
      : net(topo::generate(topo::GeneratorParams{})) {
    net.converge();
    net.set_operator_as(topo::AsId{0});
    util::Rng rng(77);
    sensors = probe::place_sensors(
        net.topology(), probe::PlacementKind::kRandomStub, num_sensors, rng);
    probe::Prober prober(net, sensors);
    before = prober.measure();
    net.start_recording();
    for (auto l : rng.sample(before.probed_links(), 2)) net.fail_link(l);
    net.reconverge();
    after = prober.measure();
    cp = exp::collect_control_plane(net);
  }
};

Episode& episode10() {
  static Episode e(10);
  return e;
}

void BM_TopologyGenerate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::generate(topo::GeneratorParams{}));
  }
}
BENCHMARK(BM_TopologyGenerate);

void BM_InitialConvergence(benchmark::State& state) {
  const auto topo = topo::generate(topo::GeneratorParams{});
  for (auto _ : state) {
    sim::Network net(topo);
    net.converge();
    benchmark::DoNotOptimize(net.bgp().events_processed());
  }
}
BENCHMARK(BM_InitialConvergence);

void BM_FailureReconvergence(benchmark::State& state) {
  auto& e = episode10();
  const auto snap = e.net.snapshot();
  util::Rng rng(5);
  const auto pool = e.before.probed_links();
  for (auto _ : state) {
    e.net.fail_link(rng.pick(pool));
    e.net.reconverge();
    e.net.restore(snap);
  }
}
BENCHMARK(BM_FailureReconvergence);

void BM_FullMeshTraceroute(benchmark::State& state) {
  auto& e = episode10();
  probe::Prober prober(e.net, e.sensors);
  for (auto _ : state) benchmark::DoNotOptimize(prober.measure());
}
BENCHMARK(BM_FullMeshTraceroute);

void BM_BuildDiagnosisGraph(benchmark::State& state) {
  auto& e = episode10();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_diagnosis_graph(e.before, e.after, state.range(0) != 0));
  }
}
BENCHMARK(BM_BuildDiagnosisGraph)->Arg(0)->Arg(1);

void BM_Tomo(benchmark::State& state) {
  auto& e = episode10();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_tomo(e.before, e.after));
  }
}
BENCHMARK(BM_Tomo);

void BM_NdEdge(benchmark::State& state) {
  auto& e = episode10();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_nd_edge(e.before, e.after));
  }
}
BENCHMARK(BM_NdEdge);

void BM_NdBgpIgp(benchmark::State& state) {
  auto& e = episode10();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_nd_bgpigp(e.before, e.after, e.cp));
  }
}
BENCHMARK(BM_NdBgpIgp);

void BM_Diagnosability(benchmark::State& state) {
  auto& e = episode10();
  const auto dg = core::build_diagnosis_graph(e.before, e.before, false);
  for (auto _ : state) benchmark::DoNotOptimize(core::diagnosability(dg));
}
BENCHMARK(BM_Diagnosability);

void BM_LgTableBuild(benchmark::State& state) {
  auto& e = episode10();
  for (auto _ : state) benchmark::DoNotOptimize(lg::LgTable(e.net));
}
BENCHMARK(BM_LgTableBuild);

void BM_SolverScaling(benchmark::State& state) {
  // Solver cost as the sensor mesh grows.
  static std::map<int, std::unique_ptr<Episode>> cache;
  const int n = static_cast<int>(state.range(0));
  if (!cache.count(n)) cache[n] = std::make_unique<Episode>(n);
  auto& e = *cache[n];
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_nd_edge(e.before, e.after));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SolverScaling)->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Complexity();

}  // namespace
