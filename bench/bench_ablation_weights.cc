// Ablation: the reroute-set weight b in score = a|C(l)| + b|R(l)|.
//
// The paper fixes a = b = 1 (§3.2). This sweep shows b = 0 collapses to
// Tomo-like sensitivity under multiple failures, while the exact positive
// value matters little — supporting the paper's simple choice.
#include <iostream>

#include "common.h"
#include "core/solver.h"

using namespace netd;

int main() {
  bench::banner("Ablation: reroute weight b (a = 1 fixed)");

  auto cfg = bench::scaled_config(2100);
  cfg.num_link_failures = 3;
  exp::Runner runner(cfg);

  const double weights[] = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0};
  std::map<double, util::Summary> sens, spec, hsize;
  runner.for_each_episode([&](const exp::EpisodeContext& ep) {
    const auto dg =
        core::build_diagnosis_graph(ep.before, ep.after, /*logical=*/true);
    for (double b : weights) {
      core::SolverOptions opt;
      opt.use_reroutes = true;
      opt.weight_reroutes = b;
      const auto res = core::solve(dg, opt);
      const auto m =
          core::link_metrics(res.links, ep.failed_links, dg.probed_keys);
      sens[b].add(m.sensitivity);
      spec[b].add(m.specificity);
      hsize[b].add(static_cast<double>(m.hypothesis_size));
    }
  });

  util::Table t({"b", "mean sensitivity", "mean specificity", "mean |H|"});
  for (double b : weights) {
    t.add_row({b, sens[b].mean(), spec[b].mean(), hsize[b].mean()});
  }
  bench::emit_table("ablation reroute weight", t);
  std::cout << "\nExpected: b=0 loses the reroutable failures; any b>0"
               " performs nearly identically (the paper's a=b=1 is safe).\n";
  return 0;
}
