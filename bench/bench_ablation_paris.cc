// Ablation: load balancing vs reroute detection (paper §2.2 footnote 2).
//
// The evaluation topology's equal-weight cores have real ECMP. A naive
// troubleshooter flags any changed path as a reroute; the Paris-aware
// variant first checks the T− ECMP alternatives. This bench measures how
// many "reroutes" were actually load balancing and what the false reroute
// sets cost in specificity.
#include <iostream>

#include "common.h"
#include "core/solver.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"
#include "util/rng.h"

using namespace netd;

int main() {
  bench::banner("Ablation: naive vs Paris-aware reroute detection");

  sim::Network net(topo::generate(topo::GeneratorParams{}));
  net.converge();
  util::Rng rng(2200);
  const auto sensors = probe::place_sensors(
      net.topology(), probe::PlacementKind::kRandomStub, 10, rng);
  // A classic traceroute hashes differently on every invocation: model
  // that by measuring T− and T+ under different flow ids, so ECMP pairs
  // can change paths with no routing event at all.
  probe::Prober prober(net, sensors);
  prober.set_flow(1);
  const auto before = prober.measure();
  const auto paris = prober.measure_paris();
  const auto pool = before.probed_links();
  const auto snap = net.snapshot();

  const std::size_t trials = bench::env_or("ND_TRIALS", 25) *
                             bench::env_or("ND_PLACEMENTS", 4);
  util::Summary naive_sens, naive_spec, aware_sens, aware_spec;
  std::size_t naive_reroutes = 0, aware_reroutes = 0, episodes = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto victims = rng.sample(pool, 2);
    for (auto l : victims) net.fail_link(l);
    net.reconverge();
    prober.set_flow(1 + t);  // a fresh hash seed, as real probes would
    const auto after = prober.measure();
    bool invoked = false;
    for (std::size_t k = 0; k < before.paths.size(); ++k) {
      invoked = invoked || (before.paths[k].ok && !after.paths[k].ok);
    }
    if (invoked) {
      ++episodes;
      std::set<std::string> truth;
      for (auto l : victims) truth.insert(exp::link_key(net.topology(), l));

      const auto naive = core::build_diagnosis_graph(before, after, true);
      const auto aware =
          core::build_diagnosis_graph(before, after, true, &paris);
      for (const auto& p : naive.paths) naive_reroutes += p.rerouted;
      for (const auto& p : aware.paths) aware_reroutes += p.rerouted;

      core::SolverOptions opt;
      opt.use_reroutes = true;
      const auto rn = core::solve(naive, opt);
      const auto ra = core::solve(aware, opt);
      const auto mn = core::link_metrics(rn.links, truth, naive.probed_keys);
      const auto ma = core::link_metrics(ra.links, truth, aware.probed_keys);
      naive_sens.add(mn.sensitivity);
      naive_spec.add(mn.specificity);
      aware_sens.add(ma.sensitivity);
      aware_spec.add(ma.specificity);
    }
    net.restore(snap);
  }

  util::Table t({"variant", "reroute sets", "mean sensitivity",
                 "mean specificity"});
  t.add_row("naive", {static_cast<double>(naive_reroutes), naive_sens.mean(),
                      naive_spec.mean()});
  t.add_row("Paris-aware", {static_cast<double>(aware_reroutes),
                            aware_sens.mean(), aware_spec.mean()});
  bench::emit_table("ablation paris", t);
  std::cout << "episodes: " << episodes
            << "\nExpected: naive detection flags many ECMP siblings as"
               " reroutes (spurious reroute sets); the Paris-aware variant"
               " suppresses them, trading a little ambiguous evidence for"
               " cleaner specificity.\n";
  return 0;
}
