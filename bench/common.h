// Shared scaffolding for the figure-reproduction benchmarks.
//
// Each bench binary reruns one figure of the paper's evaluation and prints
// its series as aligned tables. Run counts default to a laptop-friendly
// size and scale up via environment variables:
//   ND_PLACEMENTS  sensor placements per scenario   (paper: 10)
//   ND_TRIALS      failure trials per placement     (paper: 100)
//   ND_THREADS     runner worker threads (0 = one per hardware thread);
//                  results are identical for every value
//   ND_CSV_DIR     when set, every printed table is also written there
//                  as CSV for plotting
//   ND_PERF_JSON   when set to a file path, every timed scenario appends
//                  one {"bench",...,"wall_ms",...} JSON record there
#pragma once

#include <string>
#include <vector>

#include "exp/runner.h"
#include "util/stats.h"
#include "util/table.h"

namespace netd::bench {

/// Unsigned env var with default.
[[nodiscard]] std::size_t env_or(const char* name, std::size_t def);

/// Default scenario config with bench-scaled run counts applied.
[[nodiscard]] exp::ScenarioConfig scaled_config(std::uint64_t seed);

/// Runs one scenario and records its wall-clock: prints a "[perf]" line
/// and, when ND_PERF_JSON names a file, appends a JSON record
/// {bench, wall_ms, threads, placements, trials} to it.
[[nodiscard]] std::vector<exp::TrialResult> timed_run(
    const std::string& bench, exp::Runner& runner,
    const std::vector<exp::Algo>& algos, const exp::ScenarioConfig& cfg);

// Metric extraction from trial results.
[[nodiscard]] std::vector<double> link_sensitivity(
    const std::vector<exp::TrialResult>& rs, exp::Algo a);
[[nodiscard]] std::vector<double> link_specificity(
    const std::vector<exp::TrialResult>& rs, exp::Algo a);
[[nodiscard]] std::vector<double> as_sensitivity(
    const std::vector<exp::TrialResult>& rs, exp::Algo a);
[[nodiscard]] std::vector<double> as_specificity(
    const std::vector<exp::TrialResult>& rs, exp::Algo a);
[[nodiscard]] double mean(const std::vector<double>& xs);

/// Prints "value  P(X<=value) per series" on a fixed [lo, hi] grid — the
/// CDF shape the paper's figures use.
void print_cdf_table(
    const std::string& title,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    double lo = 0.0, double hi = 1.0, std::size_t bins = 10);

/// Prints a banner naming the figure being reproduced.
void banner(const std::string& what);

/// Prints the table and, when ND_CSV_DIR is set, also writes it as
/// <ND_CSV_DIR>/<slug-of-title>.csv for plotting.
void emit_table(const std::string& title, const util::Table& table);

}  // namespace netd::bench
