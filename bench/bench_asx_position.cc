// §5.3 (text): does AS-X's position (core vs stub) matter for ND-bgpigp?
//
// Expected shape: sensitivity identical; specificity equal or higher when
// AS-X sits in the core (it is on more paths, so its BGP withdrawals
// prune upstream links more often).
#include <iostream>

#include "common.h"

using namespace netd;
using exp::Algo;

int main() {
  bench::banner("AS-X position: core vs stub — §5.3 text");

  util::Table t({"AS-X", "mean sens", "mean spec"});
  for (const bool core : {true, false}) {
    auto cfg = bench::scaled_config(1600);  // same seed: same failures
    cfg.num_link_failures = 2;
    cfg.operator_at_core = core;
    exp::Runner runner(cfg);
    const auto rs = runner.run({Algo::kNdBgpIgp});
    t.add_row(core ? "core" : "stub",
              {bench::mean(bench::link_sensitivity(rs, Algo::kNdBgpIgp)),
               bench::mean(bench::link_specificity(rs, Algo::kNdBgpIgp))});
  }
  bench::emit_table("asx position", t);
  std::cout << "\nExpected (paper): no sensitivity difference; specificity"
               " same or higher for the core position.\n";
  return 0;
}
