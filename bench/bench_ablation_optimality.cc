// Ablation: the greedy's approximation gap (paper §2.3-2.4).
//
// The minimum-hitting-set problem is NP-hard; Algorithm 1 is a greedy
// log|U|-approximation that additionally adds whole tie sets ("the set of
// links with the maximum score"). This bench solves the same instances
// exactly (branch and bound) and reports how much larger the greedy's
// hypothesis is — and whether the extra links cost or buy accuracy.
#include <iostream>

#include "common.h"
#include "core/exact.h"
#include "core/solver.h"

using namespace netd;

int main() {
  bench::banner("Ablation: greedy Algorithm 1 vs exact minimum hitting set");

  auto cfg = bench::scaled_config(2600);
  cfg.num_link_failures = 2;
  exp::Runner runner(cfg);

  util::Summary greedy_h, exact_h, greedy_sens, exact_sens;
  std::size_t solved = 0, budget_exceeded = 0;
  runner.for_each_episode([&](const exp::EpisodeContext& ep) {
    const auto dg = core::build_diagnosis_graph(ep.before, ep.after, true);
    core::SolverOptions opt;
    opt.use_reroutes = true;
    const auto greedy = core::solve(dg, opt);
    const auto demands = core::build_demands(dg, opt);
    const auto exact = core::minimum_hitting_set(demands);
    if (!exact) {
      ++budget_exceeded;
      return;
    }
    ++solved;
    std::set<std::string> exact_links;
    for (auto e : *exact) {
      exact_links.insert(dg.info(graph::EdgeId{e}).phys_key);
    }
    greedy_h.add(static_cast<double>(greedy.links.size()));
    exact_h.add(static_cast<double>(exact_links.size()));
    const auto gm =
        core::link_metrics(greedy.links, ep.failed_links, dg.probed_keys);
    const auto em =
        core::link_metrics(exact_links, ep.failed_links, dg.probed_keys);
    greedy_sens.add(gm.sensitivity);
    exact_sens.add(em.sensitivity);
  });

  util::Table t({"solver", "mean |H| (links)", "mean sensitivity"});
  t.add_row("greedy (Algorithm 1)", {greedy_h.mean(), greedy_sens.mean()});
  t.add_row("exact minimum", {exact_h.mean(), exact_sens.mean()});
  bench::emit_table("ablation greedy vs exact", t);
  std::cout << "episodes solved exactly: " << solved
            << " (budget exceeded: " << budget_exceeded << ")\n";
  std::cout << "\nExpected: the greedy returns a larger hypothesis (it adds"
               " whole tie sets) but that redundancy is what buys its"
               " near-perfect sensitivity — the true minimum explains the"
               " symptoms with fewer links and misses real failures more"
               " often. \"False positives are preferred to false"
               " negatives\" (paper §2.2).\n";
  return 0;
}
