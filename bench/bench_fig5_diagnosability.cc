// Figure 5: sensor placement vs diagnosability.
//
// Reproduces the paper's case study: D(G) as a function of the number of
// sensors for the four placement strategies. Expected shape: "same AS"
// highest, then "distant AS, split path", then "distant AS"; "random"
// worst.
#include <iostream>

#include "common.h"
#include "core/diagnosability.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"
#include "util/rng.h"

using namespace netd;

int main() {
  bench::banner("Figure 5: sensor placement and diagnosability");

  sim::Network net(topo::generate(topo::GeneratorParams{}));
  net.converge();
  const std::size_t reps = bench::env_or("ND_PLACEMENTS", 4);

  const std::vector<probe::PlacementKind> kinds = {
      probe::PlacementKind::kSameAs,
      probe::PlacementKind::kDistantAs,
      probe::PlacementKind::kDistantAsSplit,
      probe::PlacementKind::kRandomStub,
  };
  util::Table t({"sensors", "same AS", "distant AS", "distant AS, split path",
                 "random"});
  for (std::size_t n : {5u, 10u, 15u, 20u, 30u, 40u, 50u}) {
    std::vector<double> row = {static_cast<double>(n)};
    for (const auto kind : kinds) {
      util::Summary s;
      util::Rng rng(1000 + n);
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto sensors = probe::place_sensors(net.topology(), kind, n, rng);
        probe::Prober prober(net, sensors);
        const auto mesh = prober.measure();
        const auto dg = core::build_diagnosis_graph(mesh, mesh, false);
        s.add(core::diagnosability(dg));
      }
      row.push_back(s.mean());
    }
    t.add_row(row);
  }
  bench::emit_table("fig5 diagnosability by placement", t);
  std::cout << "\nExpected (paper): same AS > distant AS split > distant AS;"
               " random worst.\n";
  return 0;
}
