// Figure 11: the effect of blocked traceroutes.
//
// AS-level sensitivity/specificity as the fraction f_b of on-path ASes
// blocking traceroute grows from 0 to 0.8 (every AS runs a Looking
// Glass). Expected shape: ND-LG stays ~flat and high; ND-bgpigp's
// AS-sensitivity decays like 1 - f_b.
#include <iostream>

#include "common.h"

using namespace netd;
using exp::Algo;

int main() {
  bench::banner("Figure 11: blocked traceroutes (all ASes have LGs)");

  util::Table t({"f_b", "ND-LG AS-sens", "ND-LG AS-spec",
                 "ND-bgpigp AS-sens", "ND-bgpigp AS-spec", "1-f_b"});
  for (double fb : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    auto cfg = bench::scaled_config(1100 + static_cast<int>(fb * 10));
    cfg.frac_blocked = fb;
    cfg.frac_lg = 1.0;
    exp::Runner runner(cfg);
    const auto rs =
        bench::timed_run("fig11_blocked_fb" + std::to_string(fb).substr(0, 3),
                         runner, {Algo::kNdLg, Algo::kNdBgpIgp}, cfg);
    t.add_row({fb, bench::mean(bench::as_sensitivity(rs, Algo::kNdLg)),
               bench::mean(bench::as_specificity(rs, Algo::kNdLg)),
               bench::mean(bench::as_sensitivity(rs, Algo::kNdBgpIgp)),
               bench::mean(bench::as_specificity(rs, Algo::kNdBgpIgp)),
               1.0 - fb});
  }
  bench::emit_table("fig11 blocked traceroutes", t);
  std::cout << "\nExpected (paper): ND-LG roughly flat (~0.8) in both"
               " metrics; ND-bgpigp AS-sensitivity tracks 1-f_b.\n";
  return 0;
}
