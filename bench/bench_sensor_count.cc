// §4 (text): "The number of sensors is fixed at N=10 (experiments with N
// ranging from 5 to 100 show similar trends)."
//
// Sweeps the sensor count and reports Tomo/ND-edge sensitivity and
// specificity under two link failures: the algorithm ranking must be
// stable in N (more sensors mainly buys specificity via diagnosability).
#include <iostream>

#include "common.h"

using namespace netd;
using exp::Algo;

int main() {
  bench::banner("Sensor count sweep (paper §4: N = 5..100, similar trends)");

  util::Table t({"sensors", "Tomo sens", "ND-edge sens", "ND-edge spec",
                 "episodes"});
  for (std::size_t n : {5u, 10u, 20u, 50u, 100u}) {
    auto cfg = bench::scaled_config(2700 + n);
    cfg.num_sensors = n;
    cfg.num_link_failures = 2;
    // Larger meshes cost quadratically; scale trials down to keep the
    // sweep bounded.
    if (n >= 50) {
      cfg.num_placements = std::max<std::size_t>(1, cfg.num_placements / 2);
      cfg.trials_per_placement =
          std::max<std::size_t>(5, cfg.trials_per_placement / 5);
    }
    exp::Runner runner(cfg);
    const auto rs = runner.run({Algo::kTomo, Algo::kNdEdge});
    t.add_row({static_cast<double>(n),
               bench::mean(bench::link_sensitivity(rs, Algo::kTomo)),
               bench::mean(bench::link_sensitivity(rs, Algo::kNdEdge)),
               bench::mean(bench::link_specificity(rs, Algo::kNdEdge)),
               static_cast<double>(rs.size())});
  }
  bench::emit_table("sensor count sweep", t);
  std::cout << "\nExpected (paper): the Tomo < ND-edge ranking and the"
               " magnitude of the gap are stable across N; specificity"
               " improves slowly with more sensors.\n";
  return 0;
}
