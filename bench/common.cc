#include "common.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <numeric>

#include "util/thread_pool.h"

namespace netd::bench {
namespace {
void maybe_csv(const std::string& title, const util::Table& table);
}  // namespace

std::size_t env_or(const char* name, std::size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

exp::ScenarioConfig scaled_config(std::uint64_t seed) {
  exp::ScenarioConfig cfg;
  cfg.num_placements = env_or("ND_PLACEMENTS", 4);
  cfg.trials_per_placement = env_or("ND_TRIALS", 25);
  cfg.num_threads = env_or("ND_THREADS", 0);
  cfg.seed = seed;
  return cfg;
}

std::vector<exp::TrialResult> timed_run(const std::string& bench,
                                        exp::Runner& runner,
                                        const std::vector<exp::Algo>& algos,
                                        const exp::ScenarioConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  auto rs = runner.run(algos);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  const std::size_t threads =
      std::min(util::ThreadPool::resolve_threads(cfg.num_threads),
               std::max<std::size_t>(1, cfg.num_placements));
  std::cout << "[perf] " << bench << ": " << wall_ms << " ms  (threads="
            << threads << ")\n";
  if (const char* path = std::getenv("ND_PERF_JSON");
      path != nullptr && *path != '\0') {
    std::ofstream os(path, std::ios::app);
    if (os) {
      os << "{\"bench\":\"" << bench << "\",\"wall_ms\":" << wall_ms
         << ",\"threads\":" << threads
         << ",\"placements\":" << cfg.num_placements
         << ",\"trials\":" << cfg.trials_per_placement << "}\n";
    }
  }
  return rs;
}

namespace {

template <typename Get>
std::vector<double> extract(const std::vector<exp::TrialResult>& rs,
                            exp::Algo a, Get get) {
  std::vector<double> out;
  out.reserve(rs.size());
  for (const auto& r : rs) out.push_back(get(r, a));
  return out;
}

}  // namespace

std::vector<double> link_sensitivity(const std::vector<exp::TrialResult>& rs,
                                     exp::Algo a) {
  return extract(rs, a, [](const exp::TrialResult& r, exp::Algo al) {
    return r.link.at(al).sensitivity;
  });
}

std::vector<double> link_specificity(const std::vector<exp::TrialResult>& rs,
                                     exp::Algo a) {
  return extract(rs, a, [](const exp::TrialResult& r, exp::Algo al) {
    return r.link.at(al).specificity;
  });
}

std::vector<double> as_sensitivity(const std::vector<exp::TrialResult>& rs,
                                   exp::Algo a) {
  return extract(rs, a, [](const exp::TrialResult& r, exp::Algo al) {
    return r.as_level.at(al).sensitivity;
  });
}

std::vector<double> as_specificity(const std::vector<exp::TrialResult>& rs,
                                   exp::Algo a) {
  return extract(rs, a, [](const exp::TrialResult& r, exp::Algo al) {
    return r.as_level.at(al).specificity;
  });
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

void print_cdf_table(
    const std::string& title,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    double lo, double hi, std::size_t bins) {
  std::cout << "\n" << title << "\n";
  std::vector<std::string> headers = {"value"};
  for (const auto& [name, _] : series) headers.push_back("cdf:" + name);
  util::Table t(headers);
  std::vector<std::vector<util::CdfPoint>> cdfs;
  cdfs.reserve(series.size());
  for (const auto& [_, samples] : series) {
    cdfs.push_back(util::cdf_on_grid(samples, lo, hi, bins));
  }
  for (std::size_t i = 0; i <= bins; ++i) {
    std::vector<double> row = {cdfs[0][i].value};
    for (const auto& cdf : cdfs) row.push_back(cdf[i].cum_prob);
    t.add_row(row);
  }
  t.print(std::cout);
  maybe_csv(title, t);
}

namespace {

void maybe_csv(const std::string& title, const util::Table& table) {
  const char* dir = std::getenv("ND_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::string slug;
  for (char ch : title) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    } else if (!slug.empty() && slug.back() != '-') {
      slug += '-';
    }
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  std::ofstream os(std::string(dir) + "/" + slug + ".csv");
  if (os) table.print_csv(os);
}

}  // namespace

void emit_table(const std::string& title, const util::Table& table) {
  std::cout << "\n" << title << "\n";
  table.print(std::cout);
  maybe_csv(title, table);
}

void banner(const std::string& what) {
  std::cout << "==============================================================\n"
            << what << "\n"
            << "placements=" << env_or("ND_PLACEMENTS", 4)
            << " trials/placement=" << env_or("ND_TRIALS", 25)
            << " threads="
            << util::ThreadPool::resolve_threads(env_or("ND_THREADS", 0))
            << "  (paper: 10 x 100; set ND_PLACEMENTS/ND_TRIALS to scale)\n"
            << "==============================================================\n";
}

}  // namespace netd::bench
