// Ablation: which of ND-edge's two features (logical links §3.1, reroute
// sets §3.2) buys what, and what control-plane data (§3.3) adds on top.
//
// Runs every variant on the *same* failure episodes. Expected: reroute
// sets drive sensitivity under multiple link failures; logical links
// drive sensitivity under misconfigurations; both together ≈ ND-edge;
// control-plane data buys specificity.
#include <iostream>

#include "common.h"
#include "core/solver.h"

using namespace netd;

namespace {

struct Variant {
  const char* name;
  bool logical;
  bool reroutes;
  bool control_plane;
};

constexpr Variant kVariants[] = {
    {"Tomo (none)", false, false, false},
    {"+logical only", true, false, false},
    {"+reroutes only", false, true, false},
    {"ND-edge (both)", true, true, false},
    {"ND-bgpigp (+cp)", true, true, true},
};

void run_mode(const char* title, exp::ScenarioConfig cfg) {
  std::cout << "\n--- " << title << " ---\n";
  exp::Runner runner(cfg);
  std::map<std::string, util::Summary> sens, spec;
  std::size_t episodes = 0;
  runner.for_each_episode([&](const exp::EpisodeContext& ep) {
    ++episodes;
    for (const auto& v : kVariants) {
      const auto dg = core::build_diagnosis_graph(ep.before, ep.after,
                                                  v.logical);
      core::SolverOptions opt;
      opt.use_reroutes = v.reroutes;
      opt.use_control_plane = v.control_plane;
      const auto res = core::solve(dg, opt, v.control_plane ? &ep.cp : nullptr);
      const auto m =
          core::link_metrics(res.links, ep.failed_links, dg.probed_keys);
      sens[v.name].add(m.sensitivity);
      spec[v.name].add(m.specificity);
    }
  });
  util::Table t({"variant", "mean sensitivity", "mean specificity"});
  for (const auto& v : kVariants) {
    t.add_row(v.name, {sens[v.name].mean(), spec[v.name].mean()});
  }
  bench::emit_table(std::string("ablation features ") + title, t);
  std::cout << "episodes: " << episodes << "\n";
}

}  // namespace

int main() {
  bench::banner("Ablation: ND-edge feature decomposition");

  {
    auto cfg = bench::scaled_config(2000);
    cfg.num_link_failures = 3;
    run_mode("three link failures", cfg);
  }
  {
    auto cfg = bench::scaled_config(2001);
    cfg.mode = exp::FailureMode::kMisconfig;
    run_mode("one misconfiguration", cfg);
  }
  std::cout << "\nExpected: reroute sets carry the multi-failure case;"
               " logical links carry the misconfiguration case; the"
               " combination dominates both.\n";
  return 0;
}
