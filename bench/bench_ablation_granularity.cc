// Ablation: logical-link granularity (§3.1's scalability discussion).
//
// The paper: "ideally we should have logical links on a per-prefix basis.
// However, this could result in a very large graph ... BGP policies are
// usually set on a per-neighbor basis, which means that logical links on a
// per-neighbor basis should be sufficient."
//
// This bench quantifies both halves: per-neighbor logical links catch
// per-neighbor-cone misconfigurations at a fraction of the graph size,
// but only per-prefix links catch a single-prefix filter.
#include <iostream>

#include "common.h"
#include "core/solver.h"

using namespace netd;

namespace {

void run_mode(const char* title, exp::ScenarioConfig cfg) {
  std::cout << "\n--- " << title << " ---\n";
  exp::Runner runner(cfg);
  std::map<std::string, util::Summary> sens, spec, edges;
  runner.for_each_episode([&](const exp::EpisodeContext& ep) {
    for (const auto mode : {core::LogicalMode::kPerNeighbor,
                            core::LogicalMode::kPerPrefix}) {
      const char* name = mode == core::LogicalMode::kPerNeighbor
                             ? "per-neighbor"
                             : "per-prefix";
      const auto dg = core::build_diagnosis_graph(ep.before, ep.after, mode);
      core::SolverOptions opt;
      opt.use_reroutes = true;
      const auto res = core::solve(dg, opt);
      const auto m =
          core::link_metrics(res.links, ep.failed_links, dg.probed_keys);
      sens[name].add(m.sensitivity);
      spec[name].add(m.specificity);
      edges[name].add(static_cast<double>(dg.edges.size()));
    }
  });
  util::Table t({"granularity", "mean sensitivity", "mean specificity",
                 "mean graph edges"});
  for (const char* name : {"per-neighbor", "per-prefix"}) {
    t.add_row(name, {sens[name].mean(), spec[name].mean(), edges[name].mean()});
  }
  bench::emit_table(std::string("ablation granularity ") + title, t);
}

}  // namespace

int main() {
  bench::banner("Ablation: logical-link granularity (per-neighbor vs per-prefix)");

  {
    auto cfg = bench::scaled_config(2300);
    cfg.mode = exp::FailureMode::kMisconfig;  // per-neighbor-cone filter
    run_mode("per-neighbor-cone misconfiguration (the paper's model)", cfg);
  }
  {
    auto cfg = bench::scaled_config(2301);
    cfg.mode = exp::FailureMode::kMisconfigPrefix;  // one-prefix filter
    run_mode("single-prefix misconfiguration", cfg);
  }
  std::cout << "\nExpected: equal sensitivity on cone misconfigurations"
               " (per-neighbor suffices, smaller graph); on single-prefix"
               " filters only per-prefix granularity stays sensitive.\n";
  return 0;
}
