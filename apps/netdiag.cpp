// netdiag — the NetDiagnoser command-line tool. All commands:
//
//   netdiag topo      generate/inspect/export the evaluation topology
//   netdiag plan      choose an identifiability-maximizing sensor placement
//                     from a candidate pool (greedy planner, src/plan)
//   netdiag run       run a full evaluation scenario, print metric tables
//                     (or record a svc event trace with --record FILE)
//   netdiag diagnose  walk through one failure episode verbosely
///   netdiag watch     simulate the continuous NOC loop: flap filtering plus
//                     automatic diagnosis (--record FILE captures a trace)
//   netdiag serve     run the diagnosis service daemon (svc wire protocol)
//   netdiag submit    send one protocol request to a running daemon
//   netdiag top       poll a daemon's `metrics` verb and render the
//                     Prometheus samples as a live table
//   netdiag tail      stream a daemon's structured event ring (slow
//                     requests, sheds, dedups, quarantines, fsync stalls)
//   netdiag replay    re-run a recorded event trace, verifying diagnoses
//   netdiag wal       inspect a durable server's session journals
//   netdiag trace-merge  join agent-side and server-side Chrome trace
//                     files into one cross-process Perfetto timeline
//   netdiag requarantine  replay watchdog-quarantined trials from a
//                     campaign checkpoint and recover their results
//
// Run `netdiag <command> --help` for the flags of each command.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>

#include "core/algorithms.h"
#include "core/diagnosability.h"
#include "core/json_export.h"
#include "core/report.h"
#include "core/troubleshooter.h"
#include "exp/checkpoint.h"
#include "exp/runner.h"
#include "lg/looking_glass.h"
#include "obs/events.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "obs/trace_context.h"
#include "plan/planner.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "svc/client.h"
#include "svc/journal.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "svc/socket.h"
#include "svc/trace.h"
#include "topo/generator.h"
#include "topo/io.h"
#include "topo/random_internet.h"
#include "util/atomic_file.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

using namespace netd;

namespace {

int usage() {
  std::cerr <<
      "usage: netdiag <command> [flags]\n"
      "\n"
      "commands:\n"
      "  topo      generate the paper's evaluation topology; print stats,\n"
      "            optionally dump it (--dump FILE) or export DOT (--dot FILE)\n"
      "  plan      greedily choose the probe-budget sensor subset of a\n"
      "            candidate pool that maximizes failure identifiability\n"
      "  run       run an evaluation scenario and print sensitivity/\n"
      "            specificity tables per algorithm\n"
      "  diagnose  inject one failure and show each algorithm's hypothesis\n"
      "  watch     simulate the continuous NOC loop: flap filtering plus\n"
      "            automatic diagnosis when an alarm fires\n"
      "            (--record FILE captures the rounds as an event trace)\n"
      "  serve     run the diagnosis service daemon\n"
      "  submit    send one protocol request to a daemon, print the reply\n"
      "  top       poll a daemon's `metrics` verb once per interval and\n"
      "            render the Prometheus samples as a table\n"
      "  tail      stream a daemon's structured event ring: slow requests,\n"
      "            sheds, dedups, quarantines, fsync stalls (with trace ids)\n"
      "  replay    re-run a recorded event trace (in process or through a\n"
      "            socket) and verify the diagnoses match the recording\n"
      "  wal       inspect a durable server's session journals: record\n"
      "            counts, LSN ranges, watermarks, corruption (if any)\n"
      "  trace-merge  merge per-process Chrome trace files (agents +\n"
      "            server) into one cross-process Perfetto timeline\n"
      "  requarantine  replay the trials a campaign's watchdog quarantined\n"
      "            (from a --checkpoint file) and recover their results\n";
  return 2;
}

topo::GeneratorParams topo_params(util::Flags& flags) {
  topo::GeneratorParams p;
  p.seed = static_cast<std::uint64_t>(flags.get_uint("topo-seed", 1));
  p.target_ases = flags.get_uint("ases", 165);
  p.pool_tier2 = flags.get_uint("tier2", 22);
  p.pool_stubs = flags.get_uint("stubs", 200);
  return p;
}

/// Loads a topology from --topo FILE, or generates one.
std::optional<topo::Topology> make_topology(util::Flags& flags) {
  const std::string file = flags.get("topo");
  if (file.empty()) return topo::generate(topo_params(flags));
  std::ifstream is(file);
  if (!is) {
    std::cerr << "netdiag: cannot open " << file << "\n";
    return std::nullopt;
  }
  std::string error;
  auto t = topo::read_text(is, &error);
  if (!t) std::cerr << "netdiag: " << file << ": " << error << "\n";
  return t;
}

int cmd_topo(util::Flags& flags) {
  flags.allow({"topo-seed", "ases", "tier2", "stubs", "dump", "dot", "topo",
               "help"});
  if (!flags.ok() || flags.get_bool("help")) {
    std::cerr << "netdiag topo [--topo-seed N] [--ases N] [--tier2 N] "
                 "[--stubs N]\n             [--topo FILE] [--dump FILE] "
                 "[--dot FILE]\n";
    for (const auto& e : flags.errors()) std::cerr << "  " << e << "\n";
    return flags.ok() ? 0 : 2;
  }
  const auto topo = make_topology(flags);
  if (!topo) return 1;

  std::size_t core = 0, tier2 = 0, stub = 0, inter = 0;
  for (const auto& as : topo->ases()) {
    switch (as.cls) {
      case topo::AsClass::kCore: ++core; break;
      case topo::AsClass::kTier2: ++tier2; break;
      case topo::AsClass::kStub: ++stub; break;
    }
  }
  for (const auto& l : topo->links()) inter += l.interdomain;
  std::cout << "ASes:    " << topo->num_ases() << " (" << core << " core, "
            << tier2 << " tier-2, " << stub << " stub)\n"
            << "routers: " << topo->num_routers() << "\n"
            << "links:   " << topo->num_links() << " ("
            << topo->num_links() - inter << " intradomain, " << inter
            << " interdomain)\n";

  if (const std::string f = flags.get("dump"); !f.empty()) {
    std::ofstream os(f);
    topo::write_text(*topo, os);
    std::cout << "wrote " << f << "\n";
  }
  if (const std::string f = flags.get("dot"); !f.empty()) {
    std::ofstream os(f);
    topo::write_dot(*topo, os);
    std::cout << "wrote " << f << "\n";
  }
  return 0;
}

std::optional<std::vector<exp::Algo>> parse_algos(const std::string& spec) {
  std::vector<exp::Algo> out;
  std::istringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item == "tomo") {
      out.push_back(exp::Algo::kTomo);
    } else if (item == "nd-edge") {
      out.push_back(exp::Algo::kNdEdge);
    } else if (item == "nd-bgpigp") {
      out.push_back(exp::Algo::kNdBgpIgp);
    } else if (item == "nd-lg") {
      out.push_back(exp::Algo::kNdLg);
    } else {
      std::cerr << "netdiag: unknown algorithm '" << item
                << "' (tomo, nd-edge, nd-bgpigp, nd-lg)\n";
      return std::nullopt;
    }
  }
  return out;
}

std::optional<probe::PlacementKind> parse_placement(const std::string& s) {
  if (s == "random") return probe::PlacementKind::kRandomStub;
  if (s == "same-as") return probe::PlacementKind::kSameAs;
  if (s == "distant-as") return probe::PlacementKind::kDistantAs;
  if (s == "distant-as-split") return probe::PlacementKind::kDistantAsSplit;
  std::cerr << "netdiag: unknown placement '" << s << "'\n";
  return std::nullopt;
}

/// Observability outputs of `netdiag run`: installs the trace sink when
/// --trace-out is set, and on destruction — i.e. on every exit path of
/// cmd_run — writes the Chrome trace and/or the Prometheus metrics
/// snapshot the flags requested. Failures are reported but do not change
/// the command's exit code: the run itself already succeeded or failed.
class ObsOutputs {
 public:
  explicit ObsOutputs(util::Flags& flags)
      : trace_path_(flags.get("trace-out")),
        metrics_path_(flags.get("metrics-out")) {
    if (!trace_path_.empty()) obs::TraceSink::install();
  }

  ~ObsOutputs() {
    std::string error;
    if (!trace_path_.empty()) {
      if (obs::TraceSink::write_chrome_trace(trace_path_, &error)) {
        std::cout << "wrote " << trace_path_ << " ("
                  << obs::TraceSink::snapshot().size() << " spans)\n";
      } else {
        std::cerr << "netdiag: " << error << "\n";
      }
      obs::TraceSink::uninstall();
    }
    if (!metrics_path_.empty()) {
      if (util::atomic_write_file(metrics_path_,
                                  obs::render_global_prometheus(), &error)) {
        std::cout << "wrote " << metrics_path_ << "\n";
      } else {
        std::cerr << "netdiag: " << error << "\n";
      }
    }
  }

  ObsOutputs(const ObsOutputs&) = delete;
  ObsOutputs& operator=(const ObsOutputs&) = delete;

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

int cmd_plan(util::Flags& flags) {
  flags.allow({"topo-seed", "ases", "tier2", "stubs", "topo", "internet",
               "budget", "candidates", "granularity", "placement", "seed",
               "threads", "eager", "compare-random", "json", "csv", "help"});
  if (!flags.ok() || flags.get_bool("help")) {
    std::cerr
        << "netdiag plan [--budget K] [--candidates C]  (default C = 4K)\n"
           "             [--granularity link|as|node]  objective element type\n"
           "             [--placement random|same-as|distant-as|"
           "distant-as-split]\n"
           "                            candidate-pool draw (default random)\n"
           "             [--seed S]     candidate-pool RNG seed\n"
           "             [--threads N]  BFS precompute workers (0 = all\n"
           "                            cores; the plan is identical for\n"
           "                            every value)\n"
           "             [--eager]      disable the lazy gain cache\n"
           "             [--compare-random R]  also score R random\n"
           "                            K-subsets of the pool (mean)\n"
           "             [--json] [--csv]  machine-readable output\n"
           "topology (one of):\n"
           "             [--topo-seed N] [--ases N] [--tier2 N] [--stubs N]\n"
           "                            the paper's generator (default)\n"
           "             [--topo FILE]  load a dumped topology\n"
           "             [--internet A] random Internet-like topology with\n"
           "                            ~A ASes (bench_scale's family)\n";
    for (const auto& e : flags.errors()) std::cerr << "  " << e << "\n";
    return flags.ok() ? 0 : 2;
  }

  std::optional<topo::Topology> topology;
  if (const std::size_t inet = flags.get_uint("internet", 0); inet != 0) {
    topo::RandomInternetParams p;
    p.num_tier1 = 5;
    p.num_tier2 = std::min<std::size_t>(400, 25 + inet / 100);
    p.num_stubs = inet > p.num_tier1 + p.num_tier2
                      ? inet - p.num_tier1 - p.num_tier2
                      : 1;
    p.tier1_routers = 10;
    p.tier2_routers = 4;
    p.seed = static_cast<std::uint64_t>(flags.get_uint("topo-seed", 42));
    topology = topo::random_internet(p);
  } else {
    topology = make_topology(flags);
  }
  if (!topology) return 1;

  const std::size_t budget = flags.get_uint("budget", 10);
  const auto granularity =
      plan::granularity_from_string(flags.get("granularity", "link"));
  if (!granularity) {
    std::cerr << "netdiag: unknown granularity '" << flags.get("granularity")
              << "' (link, as, node)\n";
    return 2;
  }
  auto kind = probe::PlacementKind::kRandomStub;
  if (flags.has("placement")) {
    const auto parsed = parse_placement(flags.get("placement"));
    if (!parsed) return 2;
    kind = *parsed;
  }
  const std::size_t capacity = probe::placement_capacity(*topology, kind);
  if (capacity < std::max<std::size_t>(budget, 2)) {
    std::cerr << "netdiag: topology hosts only " << capacity
              << " sensors under '" << probe::to_string(kind)
              << "' placement; lower --budget or grow the topology\n";
    return 2;
  }
  const std::size_t requested =
      std::max(flags.get_uint("candidates", budget * 4), budget);
  const std::size_t pool = std::min(requested, capacity);
  if (pool < requested) {
    std::cerr << "netdiag: candidate pool clamped to " << pool
              << " (topology capacity under '" << probe::to_string(kind)
              << "' placement)\n";
  }

  util::Rng rng(static_cast<std::uint64_t>(flags.get_uint("seed", 42)));
  plan::PlannerConfig pcfg;
  pcfg.budget = budget;
  pcfg.objective = *granularity;
  pcfg.num_threads = flags.get_uint("threads", 0);
  pcfg.lazy = !flags.get_bool("eager");
  plan::Planner planner(*topology,
                        probe::place_sensors(*topology, kind, pool, rng),
                        pcfg);

  const auto t0 = std::chrono::steady_clock::now();
  const plan::PlanResult result = planner.plan();
  const double plan_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  double random_objective = 0.0;
  const std::size_t compare = flags.get_uint("compare-random", 0);
  for (std::size_t r = 0; r < compare; ++r) {
    std::vector<std::size_t> all(planner.candidates().size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    random_objective += planner.evaluate(rng.sample(all, budget));
  }
  if (compare > 0) random_objective /= static_cast<double>(compare);

  const auto& topo = *topology;
  if (flags.get_bool("json")) {
    std::ostream& os = std::cout;
    os << "{\"granularity\":\"" << plan::to_string(*granularity)
       << "\",\"budget\":" << budget << ",\"candidates\":" << pool
       << ",\"objective\":" << result.objective << ",\"plan_ms\":" << plan_ms;
    if (compare > 0) os << ",\"random_objective\":" << random_objective;
    os << ",\"sensors\":[";
    for (std::size_t i = 0; i < result.sensors.size(); ++i) {
      const auto& s = result.sensors[i];
      os << (i == 0 ? "" : ",") << "{\"name\":\"" << s.name
         << "\",\"router\":\"" << topo.router(s.attach).name
         << "\",\"as\":" << s.as.value()
         << ",\"candidate\":" << result.chosen[i]
         << ",\"gain\":" << result.gains[i] << "}";
    }
    os << "],\"report\":{";
    const auto emit = [&os](const char* key,
                            const plan::GranularityStats& st, bool first) {
      os << (first ? "" : ",") << "\"" << key << "\":{\"covered\":"
         << st.covered << ",\"distinct\":" << st.distinct
         << ",\"identifiable\":" << st.identifiable << "}";
    };
    emit("links", result.report.links, true);
    emit("ases", result.report.ases, false);
    emit("nodes", result.report.nodes, false);
    os << "}}\n";
    return 0;
  }

  std::cout << "plan: budget=" << budget << " candidates=" << pool
            << " granularity=" << plan::to_string(*granularity)
            << " objective=" << result.objective << " ("
            << plan_ms << " ms)\n";
  if (compare > 0) {
    std::cout << "random baseline (" << compare
              << " draws): objective=" << random_objective << "\n";
  }
  util::Table sensors({"sensor @ router", "AS", "gain"});
  sensors.set_precision(0);
  for (std::size_t i = 0; i < result.sensors.size(); ++i) {
    const auto& s = result.sensors[i];
    sensors.add_row(s.name + " @ " + topo.router(s.attach).name,
                    {static_cast<double>(s.as.value()), result.gains[i]});
  }
  // The label column carries "name @ router", so the AS column follows it.
  std::cout << "\n";
  sensors.print(std::cout);
  util::Table report({"granularity", "covered", "distinct", "identifiable",
                      "D(G)", "ident frac"});
  const auto add = [&report](const char* label,
                             const plan::GranularityStats& st) {
    report.add_row(label, {static_cast<double>(st.covered),
                           static_cast<double>(st.distinct),
                           static_cast<double>(st.identifiable),
                           st.distinct_fraction(), st.identifiable_fraction()});
  };
  add("link", result.report.links);
  add("as", result.report.ases);
  add("node", result.report.nodes);
  std::cout << "\nmeasured identifiability of the planned mesh:\n";
  report.print(std::cout);
  if (flags.get_bool("csv")) {
    std::cout << "\n";
    sensors.print_csv(std::cout);
  }
  return 0;
}

int cmd_run(util::Flags& flags) {
  flags.allow({"topo-seed", "ases", "tier2", "stubs", "mode", "failures",
               "sensors", "placements", "trials", "placement", "plan-pool",
               "blocked", "lg", "operator", "seed", "algos", "threads",
               "record", "threshold", "checkpoint", "resume",
               "trial-deadline-ms", "csv", "max-placements", "trace-out",
               "metrics-out", "help"});
  if (!flags.ok() || flags.get_bool("help")) {
    std::cerr
        << "netdiag run [--mode links|misconfig|misconfig-link|router]\n"
           "            [--failures K] [--sensors N] [--placements P]\n"
           "            [--trials T] [--placement random|same-as|distant-as|"
           "distant-as-split|planned]\n"
           "            [--plan-pool C]  planned placement: candidate pool\n"
           "                            size (default 4 x sensors)\n"
           "            [--blocked F] [--lg F] [--operator core|stub]\n"
           "            [--seed S] [--algos tomo,nd-edge,nd-bgpigp,nd-lg]\n"
           "            [--threads N]  (0 = one per hardware thread; results\n"
           "                            are identical for every value)\n"
           "            [--record FILE [--threshold K]]  write the episodes\n"
           "                            as a svc event trace instead of\n"
           "                            scoring them\n"
           "crash-safe campaigns:\n"
           "            [--checkpoint FILE]  persist completed placements\n"
           "                            atomically; a killed run restarted\n"
           "                            with --resume continues where it\n"
           "                            stopped and produces byte-identical\n"
           "                            results\n"
           "            [--resume]      load --checkpoint FILE if it exists\n"
           "            [--trial-deadline-ms MS]  per-trial watchdog: a\n"
           "                            trial over budget is quarantined\n"
           "                            (see netdiag requarantine), never\n"
           "                            aborts the campaign\n"
           "            [--csv FILE]    write per-trial metrics as CSV\n"
           "            [--max-placements N]  run at most N new placements\n"
           "                            this invocation (chunked campaigns)\n"
           "observability:\n"
           "            [--trace-out FILE]  capture structured spans and\n"
           "                            write a Chrome trace_event JSON file\n"
           "                            (open in Perfetto; span IDs are\n"
           "                            deterministic per seed)\n"
           "            [--metrics-out FILE]  write the run's counters and\n"
           "                            histograms in Prometheus text format\n";
    for (const auto& e : flags.errors()) std::cerr << "  " << e << "\n";
    return flags.ok() ? 0 : 2;
  }

  exp::ScenarioConfig cfg;
  cfg.topo_params = topo_params(flags);
  cfg.num_sensors = flags.get_uint("sensors", 10);
  cfg.num_placements = flags.get_uint("placements", 5);
  cfg.trials_per_placement = flags.get_uint("trials", 20);
  cfg.num_link_failures = flags.get_uint("failures", 1);
  cfg.frac_blocked = flags.get_double("blocked", 0.0);
  cfg.frac_lg = flags.get_double("lg", 1.0);
  cfg.operator_at_core = flags.get("operator", "core") != "stub";
  cfg.seed = static_cast<std::uint64_t>(flags.get_uint("seed", 42));
  cfg.num_threads = flags.get_uint("threads", 0);
  cfg.trial_deadline_ms =
      static_cast<std::uint64_t>(flags.get_uint("trial-deadline-ms", 0));
  if (flags.has("placement")) {
    // "planned" keeps the random candidate draw but deploys the
    // plan::Planner-chosen subset (see src/plan).
    if (flags.get("placement") == "planned") {
      cfg.placement_strategy = exp::PlacementStrategy::kPlanned;
    } else {
      const auto kind = parse_placement(flags.get("placement"));
      if (!kind) return 2;
      cfg.placement = *kind;
    }
  }
  cfg.plan_pool = flags.get_uint("plan-pool", 0);

  const std::string mode = flags.get("mode", "links");
  if (mode == "links") {
    cfg.mode = exp::FailureMode::kLinks;
  } else if (mode == "misconfig") {
    cfg.mode = exp::FailureMode::kMisconfig;
  } else if (mode == "misconfig-link") {
    cfg.mode = exp::FailureMode::kMisconfigPlusLink;
  } else if (mode == "router") {
    cfg.mode = exp::FailureMode::kRouter;
  } else {
    std::cerr << "netdiag: unknown mode '" << mode << "'\n";
    return 2;
  }
  const auto algos = parse_algos(flags.get(
      "algos", cfg.frac_blocked > 0 ? "nd-bgpigp,nd-lg" : "tomo,nd-edge"));
  if (!algos) return 2;

  const ObsOutputs obs_outputs(flags);

  std::cout << "scenario: mode=" << mode << " failures=" << cfg.num_link_failures
            << " sensors=" << cfg.num_sensors << " placements x trials="
            << cfg.num_placements << "x" << cfg.trials_per_placement
            << " blocked=" << cfg.frac_blocked << " lg=" << cfg.frac_lg
            << "\n";
  exp::CampaignOptions copts;
  copts.checkpoint_path = flags.get("checkpoint");
  copts.resume = flags.get_bool("resume");
  copts.max_new_placements = flags.get_uint("max-placements", 0);
  const bool campaign = !copts.checkpoint_path.empty() || copts.resume ||
                        flags.has("csv") || flags.has("max-placements") ||
                        cfg.trial_deadline_ms > 0;
  const auto print_campaign_summary = [](const exp::CampaignResult& res) {
    std::cout << "campaign: " << res.completed_placements << "/"
              << res.total_placements << " placements done ("
              << res.resumed_placements << " resumed), " << res.episodes
              << " episodes";
    if (!res.quarantined.empty()) {
      std::cout << ", " << res.quarantined.size()
                << " quarantined trial(s) — replay with netdiag requarantine";
    }
    std::cout << "\n";
  };

  exp::Runner runner(cfg);
  if (const std::string f = flags.get("record"); !f.empty()) {
    svc::SessionConfig scfg;
    scfg.alarm_threshold = flags.get_uint("threshold", 1);
    std::string error;
    if (campaign) {
      const auto res = runner.record_campaign(f, scfg, copts, &error);
      if (!res) {
        std::cerr << "netdiag: " << error << "\n";
        return 1;
      }
      std::cout << "wrote " << f << " (" << res->episodes << " episodes)\n";
      print_campaign_summary(*res);
      return 0;
    }
    std::ofstream os(f);
    if (!os) {
      std::cerr << "netdiag: cannot write " << f << "\n";
      return 1;
    }
    const auto episodes = runner.record_trace(os, scfg, &error);
    if (!episodes) {
      std::cerr << "netdiag: " << error << "\n";
      return 1;
    }
    std::cout << "wrote " << f << " (" << *episodes << " episodes)\n";
    return 0;
  }

  std::vector<exp::TrialResult> results;
  if (campaign) {
    std::string error;
    const auto res = runner.run_campaign(*algos, copts, &error);
    if (!res) {
      std::cerr << "netdiag: " << error << "\n";
      return 1;
    }
    print_campaign_summary(*res);
    if (const std::string f = flags.get("csv"); !f.empty()) {
      std::ofstream os(f);
      if (!os) {
        std::cerr << "netdiag: cannot write " << f << "\n";
        return 1;
      }
      exp::write_csv(os, res->trials, *algos);
      std::cout << "wrote " << f << " (" << res->trials.size() << " rows)\n";
    }
    results.reserve(res->trials.size());
    for (const auto& st : res->trials) results.push_back(st.result);
  } else {
    results = runner.run(*algos);
  }
  std::cout << results.size() << " diagnosable episodes\n\n";
  if (results.empty()) return 0;

  util::Table t({"algorithm", "link sens", "link spec", "AS sens", "AS spec",
                 "mean |H|"});
  for (exp::Algo a : *algos) {
    util::Summary ls, lp, as, ap, hs;
    for (const auto& r : results) {
      if (r.link.count(a) != 0) {
        ls.add(r.link.at(a).sensitivity);
        lp.add(r.link.at(a).specificity);
        hs.add(static_cast<double>(r.link.at(a).hypothesis_size));
      }
      as.add(r.as_level.at(a).sensitivity);
      ap.add(r.as_level.at(a).specificity);
    }
    t.add_row(exp::to_string(a),
              {ls.mean(), lp.mean(), as.mean(), ap.mean(), hs.mean()});
  }
  t.print(std::cout);
  return 0;
}

int cmd_diagnose(util::Flags& flags) {
  flags.allow({"topo-seed", "ases", "tier2", "stubs", "topo", "seed",
               "failures", "sensors", "report", "json", "help"});
  if (!flags.ok() || flags.get_bool("help")) {
    std::cerr << "netdiag diagnose [--seed S] [--failures K] [--sensors N]\n"
                 "                 [--topo FILE] [--report] [--json]\n";
    for (const auto& e : flags.errors()) std::cerr << "  " << e << "\n";
    return flags.ok() ? 0 : 2;
  }
  auto topology = make_topology(flags);
  if (!topology) return 1;
  sim::Network net(std::move(*topology));
  net.converge();
  const auto& topo = net.topology();
  net.set_operator_as(topo::AsId{0});

  util::Rng rng(static_cast<std::uint64_t>(flags.get_uint("seed", 7)));
  const auto sensors = probe::place_sensors(
      topo, probe::PlacementKind::kRandomStub,
      flags.get_uint("sensors", 10), rng);
  probe::Prober prober(net, sensors);
  const auto before = prober.measure();
  const auto dg = core::build_diagnosis_graph(before, before, false);
  std::cout << "probed links: " << dg.probed_keys.size()
            << ", diagnosability: " << core::diagnosability(dg) << "\n";

  const auto k = flags.get_uint("failures", 2);
  const auto pool = before.probed_links();
  if (pool.size() < k) {
    std::cerr << "netdiag: not enough probed links\n";
    return 1;
  }
  const auto victims = rng.sample(pool, k);
  std::cout << "failing:";
  for (auto l : victims) std::cout << " " << exp::link_key(topo, l);
  std::cout << "\n";
  net.start_recording();
  for (auto l : victims) net.fail_link(l);
  net.reconverge();
  const auto after = prober.measure();

  std::size_t broken = 0;
  for (std::size_t i = 0; i < before.paths.size(); ++i) {
    broken += before.paths[i].ok && !after.paths[i].ok;
  }
  std::cout << "broken pairs: " << broken << " / " << before.paths.size()
            << "\n";
  if (broken == 0) {
    std::cout << "all pairs recovered by rerouting; nothing to diagnose "
                 "(try another --seed)\n";
    return 0;
  }

  const auto cp = exp::collect_control_plane(net);
  std::set<std::string> truth;
  for (auto l : victims) truth.insert(exp::link_key(topo, l));
  auto report = [&](const char* name, const core::AlgorithmOutput& out) {
    const auto m =
        core::link_metrics(out.result.links, truth, out.graph.probed_keys);
    std::cout << "\n" << name << " (sens " << m.sensitivity << ", spec "
              << m.specificity << "):\n";
    for (const auto& key : out.result.links) {
      std::cout << "  " << key
                << (truth.count(key) ? "   <-- actually failed" : "") << "\n";
    }
  };
  report("Tomo", core::run_tomo(before, after));
  report("ND-edge", core::run_nd_edge(before, after));
  const auto bgpigp = core::run_nd_bgpigp(before, after, cp);
  report("ND-bgpigp", bgpigp);
  if (flags.get_bool("report")) {
    std::cout << "\n"
              << core::render_report(bgpigp.graph, bgpigp.result, &truth);
  }
  if (flags.get_bool("json")) {
    std::cout << "\n" << core::to_json(bgpigp.graph, bgpigp.result) << "\n";
  }
  return 0;
}

int cmd_watch(util::Flags& flags) {
  flags.allow({"topo-seed", "ases", "tier2", "stubs", "topo", "seed",
               "sensors", "rounds", "threshold", "fail-round", "flap-round",
               "record", "help"});
  if (!flags.ok() || flags.get_bool("help")) {
    std::cerr << "netdiag watch [--seed S] [--sensors N] [--rounds R]\n"
                 "              [--threshold K] [--flap-round A]"
                 " [--fail-round B]\n"
                 "              [--record FILE]  (capture an event trace for"
                 " netdiag replay)\n";
    for (const auto& e : flags.errors()) std::cerr << "  " << e << "\n";
    return flags.ok() ? 0 : 2;
  }
  auto topology = make_topology(flags);
  if (!topology) return 1;
  sim::Network net(std::move(*topology));
  net.converge();
  net.set_operator_as(topo::AsId{0});

  util::Rng rng(static_cast<std::uint64_t>(flags.get_uint("seed", 7)));
  const auto sensors = probe::place_sensors(
      net.topology(), probe::PlacementKind::kRandomStub,
      flags.get_uint("sensors", 10), rng);
  probe::Prober prober(net, sensors);

  core::Troubleshooter::Config cfg;
  cfg.alarm_threshold = flags.get_uint("threshold", 3);
  cfg.solver = core::nd_bgpigp_options();
  core::Troubleshooter ts(cfg);

  // --record streams every baseline/round (and the diagnosis, if one
  // fires) as a svc event trace that `netdiag replay` can re-run.
  std::ofstream trace_os;
  std::optional<svc::TraceRecorder> recorder;
  if (const std::string f = flags.get("record"); !f.empty()) {
    trace_os.open(f);
    if (!trace_os) {
      std::cerr << "netdiag: cannot write " << f << "\n";
      return 1;
    }
    svc::SessionConfig scfg;
    scfg.alarm_threshold = cfg.alarm_threshold;
    recorder.emplace(trace_os, scfg);
  }

  const auto baseline_mesh = prober.measure();
  ts.set_baseline(baseline_mesh);
  if (recorder) recorder->baseline(baseline_mesh);

  const auto rounds = flags.get_int("rounds", 10);
  const auto flap_round = flags.get_int("flap-round", 2);
  const auto fail_round = flags.get_int("fail-round", 5);
  const auto pool = ts.baseline().probed_links();
  const topo::LinkId flap_victim = rng.pick(pool);
  // The persistent failure should actually break pairs: prefer a
  // single-homed sensor's uplink (non-recoverable by construction).
  topo::LinkId fail_victim = rng.pick(pool);
  for (const auto& s : sensors) {
    std::size_t uplinks = 0;
    topo::LinkId last;
    for (topo::LinkId l : net.topology().links_of(s.attach)) {
      if (net.topology().link(l).interdomain) {
        ++uplinks;
        last = l;
      }
    }
    if (uplinks == 1) {
      fail_victim = last;
      break;
    }
  }
  const auto snap = net.snapshot();

  for (long long r = 1; r <= rounds; ++r) {
    std::cout << "round " << r << ": ";
    if (r == flap_round) {
      net.fail_link(flap_victim);
      net.reconverge();
      std::cout << "[flap: " << exp::link_key(net.topology(), flap_victim)
                << " down this round] ";
    } else if (r == flap_round + 1) {
      net.restore(snap);
      net.set_operator_as(topo::AsId{0});
    }
    if (r == fail_round) {
      net.start_recording();
      net.fail_link(fail_victim);
      net.reconverge();
      std::cout << "[failure: " << exp::link_key(net.topology(), fail_victim)
                << " down persistently] ";
    }
    const auto cp = exp::collect_control_plane(net);
    const auto mesh = prober.measure();
    if (recorder) recorder->round(mesh, &cp);
    const auto diag = ts.observe(mesh, &cp);
    if (diag) {
      if (recorder) recorder->diagnosis(*diag);
      std::cout << "ALARM -> diagnosis\n\n";
      std::set<std::string> truth = {exp::link_key(net.topology(), fail_victim)};
      std::cout << core::render_report(diag->graph, diag->result, &truth);
      return 0;
    }
    std::cout << (ts.alarmed() ? "alarmed" : "quiet") << "\n";
  }
  std::cout << "no alarm within " << rounds << " rounds\n";
  return 0;
}

int cmd_serve(util::Flags& flags) {
  flags.allow({"listen", "threads", "idle-timeout-ms", "max-pending",
               "max-sessions", "drain-timeout-ms", "retry-after-ms",
               "chaos-seed", "campaign-checkpoint", "state-dir", "fsync",
               "snapshot-every", "slow-request-ms", "trace-out", "help"});
  if (!flags.ok() || flags.get_bool("help")) {
    std::cerr << "netdiag serve [--listen unix:PATH|HOST:PORT|:PORT]"
                 " [--threads N]\n"
                 "              [--idle-timeout-ms MS] [--max-pending N]"
                 " [--max-sessions N]\n"
                 "              [--drain-timeout-ms MS] [--retry-after-ms MS]"
                 " [--chaos-seed S]\n"
                 "              [--campaign-checkpoint FILE] [--state-dir DIR]\n"
                 "              [--fsync always|batch] [--snapshot-every N]\n"
                 "              [--slow-request-ms MS] [--trace-out FILE]\n"
                 "runs until a client sends the shutdown op; --idle-timeout-ms 0"
                 " disables the\nper-connection frame deadline, --chaos-seed"
                 " arms seeded fault injection on\nevery response (testing"
                 " only); --campaign-checkpoint surfaces a running\n"
                 "campaign's progress (completed placements, quarantined"
                 " trials) through the\nstats verb; --state-dir makes sessions"
                 " durable (write-ahead journal +\nsnapshots, recovered on"
                 " restart); --fsync batch (default) survives SIGKILL,\n"
                 "always additionally survives power loss; --slow-request-ms"
                 " logs requests\nover the threshold to the event ring"
                 " (`netdiag tail`); --trace-out writes\nthe server-side"
                 " request spans as a Chrome trace on shutdown (merge with\n"
                 "agent files via `netdiag trace-merge`)\n";
    for (const auto& e : flags.errors()) std::cerr << "  " << e << "\n";
    return flags.ok() ? 0 : 2;
  }
  std::string error;
  const auto ep = svc::Endpoint::parse(flags.get("listen", ":7433"), &error);
  if (!ep) {
    std::cerr << "netdiag: " << error << "\n";
    return 2;
  }
  svc::Server::Options opts;
  opts.endpoint = *ep;
  opts.num_threads = flags.get_uint("threads", 8);
  opts.idle_timeout_ms = flags.get_int("idle-timeout-ms", 30000);
  opts.max_pending = flags.get_uint("max-pending", 64);
  opts.max_sessions = flags.get_uint("max-sessions", 0);
  opts.drain_timeout_ms = flags.get_int("drain-timeout-ms", 2000);
  opts.retry_after_ms =
      static_cast<std::uint64_t>(flags.get_uint("retry-after-ms", 100));
  if (flags.has("chaos-seed")) {
    opts.fault_plan = svc::FaultPlan::chaos(
        static_cast<std::uint64_t>(flags.get_uint("chaos-seed", 1)));
  }
  opts.state_dir = flags.get("state-dir");
  const std::string fsync_name = flags.get("fsync", "batch");
  const auto policy = svc::fsync_policy_from_string(fsync_name);
  if (!policy) {
    std::cerr << "netdiag: unknown --fsync policy '" << fsync_name
              << "' (always, batch)\n";
    return 2;
  }
  opts.fsync = *policy;
  opts.snapshot_every = flags.get_uint("snapshot-every", 256);
  opts.slow_request_ms = flags.get_int("slow-request-ms", 0);
  if (const std::string f = flags.get("campaign-checkpoint"); !f.empty()) {
    // The checkpoint is replaced atomically by the campaign process
    // (rename(2)), so reading it on every stats request always sees one
    // complete version — no coordination needed.
    opts.campaign_stats = [f]() {
      svc::Json j = svc::Json::object();
      std::string cerror;
      const auto ck = exp::Checkpoint::load(f, &cerror);
      if (!ck) {
        j.set("error", svc::Json::string(cerror));
        return j;
      }
      j.set("completed_placements",
            svc::Json::uinteger(ck->completed_placements));
      j.set("total_placements",
            svc::Json::uinteger(ck->scenario.num_placements));
      j.set("episodes", svc::Json::uinteger(ck->episodes));
      j.set("quarantined", svc::Json::uinteger(ck->quarantined.size()));
      j.set("recording", svc::Json::boolean(ck->recording));
      return j;
    };
  }
  const std::string trace_out = flags.get("trace-out");
  if (!trace_out.empty()) obs::TraceSink::install();
  svc::Server server(std::move(opts));
  if (!server.start(&error)) {
    std::cerr << "netdiag: " << error << "\n";
    return 1;
  }
  std::cout << "netdiag: listening on " << server.endpoint().to_string()
            << "\n" << std::flush;
  server.wait();
  server.stop();
  if (!trace_out.empty()) {
    if (obs::TraceSink::write_chrome_trace(trace_out, &error)) {
      std::cout << "wrote " << trace_out << " ("
                << obs::TraceSink::snapshot().size() << " spans)\n";
    } else {
      std::cerr << "netdiag: " << error << "\n";
    }
    obs::TraceSink::uninstall();
  }
  std::cout << "netdiag: server stopped\n";
  return 0;
}

/// Client resilience knobs shared by `submit` and `replay --connect`.
svc::Client::Options client_options(util::Flags& flags) {
  svc::Client::Options copts;
  copts.connect_timeout_ms = flags.get_int("connect-timeout-ms", 5000);
  copts.request_timeout_ms = flags.get_int("request-timeout-ms", 30000);
  copts.max_retries = flags.get_uint("retries", 3);
  return copts;
}

int cmd_submit(util::Flags& flags) {
  flags.allow({"connect", "op", "session", "threshold", "algo", "granularity",
               "retries", "connect-timeout-ms", "request-timeout-ms", "help"});
  if (!flags.ok() || flags.get_bool("help")) {
    std::cerr
        << "netdiag submit [--connect ADDR] "
           "--op hello|query|stats|metrics|shutdown\n"
           "               [--session NAME] [--threshold K] [--algo A]\n"
           "               [--granularity G] [--retries N]\n"
           "               [--connect-timeout-ms MS] [--request-timeout-ms MS]\n"
           "prints the response frame (metrics prints the Prometheus text\n"
           "body); observation streams are fed with\n"
           "`netdiag replay FILE --connect ADDR`\n";
    for (const auto& e : flags.errors()) std::cerr << "  " << e << "\n";
    return flags.ok() ? 0 : 2;
  }
  std::string error;
  const auto ep = svc::Endpoint::parse(flags.get("connect", ":7433"), &error);
  if (!ep) {
    std::cerr << "netdiag: " << error << "\n";
    return 2;
  }
  const std::string op = flags.get("op", "stats");
  const std::string session = flags.get("session", "default");
  svc::Request req;
  if (op == "hello") {
    svc::SessionConfig scfg;
    scfg.alarm_threshold = flags.get_uint("threshold", scfg.alarm_threshold);
    scfg.algo = flags.get("algo", scfg.algo);
    scfg.granularity = flags.get("granularity", scfg.granularity);
    req = svc::HelloRequest{session, std::move(scfg)};
  } else if (op == "query") {
    req = svc::QueryRequest{session};
  } else if (op == "stats") {
    req = svc::StatsRequest{};
  } else if (op == "metrics") {
    req = svc::MetricsRequest{};
  } else if (op == "shutdown") {
    req = svc::ShutdownRequest{};
  } else {
    std::cerr << "netdiag: unknown op '" << op
              << "' (hello, query, stats, metrics, shutdown)\n";
    return 2;
  }
  auto client = svc::Client::connect(*ep, client_options(flags), &error);
  if (!client) {
    std::cerr << "netdiag: " << error << "\n";
    return 1;
  }
  const auto rsp = client->call(req, &error);
  if (!rsp) {
    std::cerr << "netdiag: " << error << "\n";
    return 1;
  }
  if (const auto* m = std::get_if<svc::MetricsResponse>(&*rsp)) {
    std::cout << m->text;  // multi-line Prometheus text, not a JSON frame
    return 0;
  }
  std::cout << svc::serialize(*rsp) << "\n";
  return std::holds_alternative<svc::ErrorResponse>(*rsp) ? 1 : 0;
}

/// One parsed Prometheus exposition line: `name{labels} value`.
struct PromSample {
  std::string series;  ///< name plus the rendered label set, verbatim
  double value = 0.0;
};

/// Minimal Prometheus text-format reader for `netdiag top`: keeps every
/// sample line (skipping # HELP/# TYPE comments and blanks), splitting at
/// the final space. OpenMetrics-style exemplar suffixes (` # {...} 1`)
/// are stripped first so the parsed value is the series value, not the
/// exemplar's. Unparsable lines are dropped rather than fatal — top is a
/// viewer, not a validator.
std::vector<PromSample> parse_prometheus(const std::string& text) {
  std::vector<PromSample> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (const auto ex = line.find(" # {"); ex != std::string::npos) {
      line.resize(ex);
    }
    const auto sp = line.rfind(' ');
    if (sp == std::string::npos || sp + 1 >= line.size()) continue;
    const char* begin = line.c_str() + sp + 1;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) continue;
    out.push_back({line.substr(0, sp), v});
  }
  return out;
}

int cmd_top(util::Flags& flags) {
  flags.allow({"connect", "interval-ms", "iterations", "filter", "retries",
               "connect-timeout-ms", "request-timeout-ms", "help"});
  if (!flags.ok() || flags.get_bool("help")) {
    std::cerr
        << "netdiag top [--connect ADDR] [--interval-ms MS] [--iterations N]\n"
           "            [--filter SUBSTR] [--retries N]\n"
           "            [--connect-timeout-ms MS] [--request-timeout-ms MS]\n"
           "polls the daemon's `metrics` verb once per interval (default\n"
           "1000 ms) and renders the samples as a table; --iterations 0\n"
           "(the default) polls until interrupted, --filter keeps only\n"
           "series whose name contains SUBSTR\n";
    for (const auto& e : flags.errors()) std::cerr << "  " << e << "\n";
    return flags.ok() ? 0 : 2;
  }
  std::string error;
  const auto ep = svc::Endpoint::parse(flags.get("connect", ":7433"), &error);
  if (!ep) {
    std::cerr << "netdiag: " << error << "\n";
    return 2;
  }
  const std::uint64_t interval_ms = flags.get_uint("interval-ms", 1000);
  const std::uint64_t iterations = flags.get_uint("iterations", 0);
  const std::string filter = flags.get("filter");
  auto client = svc::Client::connect(*ep, client_options(flags), &error);
  if (!client) {
    std::cerr << "netdiag: " << error << "\n";
    return 1;
  }
  for (std::uint64_t i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    const auto rsp = client->call(svc::Request{svc::MetricsRequest{}}, &error);
    if (!rsp) {
      std::cerr << "netdiag: " << error << "\n";
      return 1;
    }
    const auto* m = std::get_if<svc::MetricsResponse>(&*rsp);
    if (!m) {
      std::cerr << "netdiag: unexpected response: " << svc::serialize(*rsp)
                << "\n";
      return 1;
    }
    const auto samples = parse_prometheus(m->text);
    // Durability at a glance: the journal/fsync counters as one header
    // line, so an operator sees WAL pressure without scrolling the table.
    const auto value_of = [&samples](const std::string& series) {
      for (const auto& s : samples) {
        if (s.series == series) return s.value;
      }
      return 0.0;
    };
    util::Table t({"metric", "value"});
    for (const auto& s : samples) {
      if (!filter.empty() && s.series.find(filter) == std::string::npos) {
        continue;
      }
      t.add_row(s.series, {s.value});
    }
    std::cout << "--- poll " << (i + 1) << " ---\n"
              << "journal: appends="
              << value_of("netd_svc_journal_appends_total")
              << " fsyncs=" << value_of("netd_svc_journal_fsyncs_total")
              << " snapshots=" << value_of("netd_svc_journal_snapshots_total")
              << " torn=" << value_of("netd_svc_journal_torn_tails_total")
              << " quarantined="
              << value_of("netd_svc_journal_quarantined_segments_total")
              << "\n";
    t.print(std::cout);
    std::cout.flush();
  }
  return 0;
}

/// Live view of the server's structured event ring, via the `events`
/// wire verb: cursor-resumed polling, so a long-running tail never
/// re-prints an event and a restarted tail can resume where it stopped.
int cmd_tail(util::Flags& flags) {
  flags.allow({"connect", "interval-ms", "cursor", "cap", "once", "retries",
               "connect-timeout-ms", "request-timeout-ms", "help"});
  if (!flags.ok() || flags.get_bool("help")) {
    std::cerr
        << "netdiag tail [--connect ADDR] [--interval-ms MS] [--once]\n"
           "             [--cursor N] [--cap N] [--retries N]\n"
           "             [--connect-timeout-ms MS] [--request-timeout-ms MS]\n"
           "streams the daemon's structured event ring: slow requests,\n"
           "sheds, dedups, journal quarantines and fsync stalls, each\n"
           "tagged with its trace id; --once drains the ring one time and\n"
           "exits (for scripts), otherwise polls per interval (default\n"
           "1000 ms) from --cursor (default 0 = oldest retained)\n";
    for (const auto& e : flags.errors()) std::cerr << "  " << e << "\n";
    return flags.ok() ? 0 : 2;
  }
  std::string error;
  const auto ep = svc::Endpoint::parse(flags.get("connect", ":7433"), &error);
  if (!ep) {
    std::cerr << "netdiag: " << error << "\n";
    return 2;
  }
  auto client = svc::Client::connect(*ep, client_options(flags), &error);
  if (!client) {
    std::cerr << "netdiag: " << error << "\n";
    return 1;
  }
  std::uint64_t cursor = flags.get_uint("cursor", 0);
  const std::uint64_t cap = flags.get_uint("cap", 0);
  const std::uint64_t interval_ms = flags.get_uint("interval-ms", 1000);
  const bool once = flags.get_bool("once");
  for (;;) {
    const auto rsp =
        client->call(svc::Request{svc::EventsRequest{cursor, cap}}, &error);
    if (!rsp) {
      std::cerr << "netdiag: " << error << "\n";
      return 1;
    }
    const auto* ev = std::get_if<svc::EventsResponse>(&*rsp);
    if (ev == nullptr) {
      std::cerr << "netdiag: unexpected response: " << svc::serialize(*rsp)
                << "\n";
      return 1;
    }
    for (const auto& e : ev->events) {
      std::cout << e.seq << " +" << e.t_ms << "ms "
                << obs::event_kind_name(e.kind) << " " << e.detail;
      if (e.trace_id != 0) {
        std::cout << " trace=" << obs::format_trace_id(e.trace_id);
      }
      if (e.dur_us != 0) std::cout << " dur_us=" << e.dur_us;
      std::cout << "\n";
    }
    std::cout.flush();
    cursor = ev->next_cursor;
    if (once) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

/// Merges per-process Chrome trace files into one timeline: each input
/// file becomes its own Perfetto process (pid = its position on the
/// command line, process_name = the file), while the seed-derived span
/// and trace ids pass through untouched — they are the cross-process
/// join key the agent and server both stamped, so one observation's
/// spool/ship spans line up under the server's rx_*/journal/solve spans.
int cmd_trace_merge(util::Flags& flags) {
  flags.allow({"out", "help"});
  const bool bad_args = flags.positional().empty();
  if (!flags.ok() || flags.get_bool("help") || bad_args) {
    std::cerr
        << "netdiag trace-merge FILE... [--out FILE]\n"
           "merges the Chrome trace files written by `netdiag serve\n"
           "--trace-out` and `netdiag-agent --trace-out` into one file that\n"
           "Perfetto (or chrome://tracing) renders as a cross-process\n"
           "timeline: one pid per input file, trace ids preserved; the\n"
           "merged JSON goes to --out FILE, or stdout when omitted\n";
    for (const auto& e : flags.errors()) std::cerr << "  " << e << "\n";
    return flags.ok() && !bad_args ? 0 : 2;
  }
  svc::Json merged = svc::Json::array();
  for (std::size_t i = 0; i < flags.positional().size(); ++i) {
    const std::string& file = flags.positional()[i];
    std::string error;
    const auto bytes = util::read_file(file, &error);
    if (!bytes) {
      std::cerr << "netdiag: " << file << ": " << error << "\n";
      return 1;
    }
    const auto doc = svc::Json::parse(*bytes, &error);
    if (!doc || !doc->is_array()) {
      std::cerr << "netdiag: " << file << ": "
                << (doc ? "not a trace event array" : error) << "\n";
      return 1;
    }
    const svc::Json pid = svc::Json::uinteger(i + 1);
    svc::Json meta = svc::Json::object();
    meta.set("ph", svc::Json::string("M"));
    meta.set("pid", pid);
    meta.set("tid", svc::Json::uinteger(0));
    meta.set("name", svc::Json::string("process_name"));
    svc::Json margs = svc::Json::object();
    margs.set("name", svc::Json::string(file));
    meta.set("args", std::move(margs));
    merged.push_back(std::move(meta));
    for (std::size_t k = 0; k < doc->size(); ++k) {
      const svc::Json& src = (*doc)[k];
      if (!src.is_object()) continue;
      svc::Json ev = svc::Json::object();
      bool had_pid = false;
      for (const auto& [key, v] : src.members()) {
        if (key == "pid") {
          ev.set(key, pid);
          had_pid = true;
        } else {
          ev.set(key, v);
        }
      }
      if (!had_pid) ev.set("pid", pid);
      merged.push_back(std::move(ev));
    }
  }
  std::string out = "[\n";
  for (std::size_t k = 0; k < merged.size(); ++k) {
    if (k > 0) out += ",\n";
    out += merged[k].dump();
  }
  out += "\n]\n";
  if (const std::string f = flags.get("out"); !f.empty()) {
    std::string error;
    if (!util::atomic_write_file(f, out, &error)) {
      std::cerr << "netdiag: " << error << "\n";
      return 1;
    }
    std::cout << "wrote " << f << " (" << merged.size() << " events, "
              << flags.positional().size() << " processes)\n";
    return 0;
  }
  std::cout << out;
  return 0;
}

int cmd_replay(util::Flags& flags) {
  flags.allow({"via-socket", "connect", "session", "retries",
               "connect-timeout-ms", "request-timeout-ms", "help"});
  const bool bad_args = flags.positional().size() != 1;
  if (!flags.ok() || flags.get_bool("help") || bad_args) {
    std::cerr
        << "netdiag replay FILE [--via-socket | --connect ADDR]"
           " [--session NAME]\n"
           "               [--retries N] [--connect-timeout-ms MS]"
           " [--request-timeout-ms MS]\n"
           "re-runs the recorded observation stream through a fresh\n"
           "troubleshooter — in process by default, through a private\n"
           "single-use daemon on a temporary unix socket (--via-socket),\n"
           "or against a live daemon (--connect) — and fails when any\n"
           "diagnosis differs from the recording\n";
    for (const auto& e : flags.errors()) std::cerr << "  " << e << "\n";
    return flags.ok() && !bad_args ? 0 : 2;
  }
  const std::string file = flags.positional()[0];
  std::ifstream is(file);
  if (!is) {
    std::cerr << "netdiag: cannot open " << file << "\n";
    return 1;
  }
  std::string error;
  const auto trace = svc::read_trace(is, &error);
  if (!trace) {
    std::cerr << "netdiag: " << file << ": " << error << "\n";
    return 1;
  }

  svc::ReplayResult result;
  if (flags.get_bool("via-socket") || flags.has("connect")) {
    std::optional<svc::Server> server;
    svc::Endpoint ep;
    if (flags.has("connect")) {
      const auto parsed = svc::Endpoint::parse(flags.get("connect"), &error);
      if (!parsed) {
        std::cerr << "netdiag: " << error << "\n";
        return 2;
      }
      ep = *parsed;
    } else {
      // The observations still cross a real socket boundary: a private
      // daemon bound next to the trace file serves just this replay.
      svc::Server::Options opts;
      opts.endpoint.kind = svc::Endpoint::Kind::kUnix;
      opts.endpoint.path = file + ".sock";
      server.emplace(std::move(opts));
      if (!server->start(&error)) {
        std::cerr << "netdiag: " << error << "\n";
        return 1;
      }
      ep = server->endpoint();
    }
    auto client = svc::Client::connect(ep, client_options(flags), &error);
    if (!client) {
      std::cerr << "netdiag: " << error << "\n";
      return 1;
    }
    result = svc::replay_through(*client, flags.get("session", "replay"),
                                 *trace);
    if (server) server->stop();
  } else {
    result = svc::replay_in_process(*trace);
  }

  std::cout << "replayed " << result.baselines << " episode(s), "
            << result.rounds << " round(s), " << result.diagnoses
            << " diagnosis/es\n";
  if (!result.ok()) {
    for (const auto& m : result.mismatches) {
      std::cerr << "mismatch: " << m << "\n";
    }
    return 1;
  }
  std::cout << "replay matches the recording\n";
  return 0;
}

int cmd_requarantine(util::Flags& flags) {
  flags.allow({"checkpoint", "algos", "csv", "help"});
  if (!flags.ok() || flags.get_bool("help") || !flags.has("checkpoint")) {
    std::cerr
        << "netdiag requarantine --checkpoint FILE [--algos LIST] [--csv "
           "FILE]\n"
           "replays every placement holding a watchdog-quarantined trial —\n"
           "serially, watchdog off, from the placement's pre-forked RNG\n"
           "stream, so the draws match the original campaign — and recovers\n"
           "the quarantined trials' per-trial metrics\n";
    for (const auto& e : flags.errors()) std::cerr << "  " << e << "\n";
    return flags.ok() && flags.get_bool("help") ? 0 : 2;
  }
  const std::string path = flags.get("checkpoint");
  std::string error;
  auto ck = exp::Checkpoint::load(path, &error);
  if (!ck) {
    std::cerr << "netdiag: " << error << "\n";
    return 1;
  }
  if (ck->quarantined.empty()) {
    std::cout << "no quarantined trials in " << path << "\n";
    return 0;
  }

  std::vector<exp::Algo> algos = ck->algos;
  if (flags.has("algos")) {
    const auto parsed = parse_algos(flags.get("algos"));
    if (!parsed) return 2;
    algos = *parsed;
  }
  if (algos.empty()) algos = {exp::Algo::kNdBgpIgp};

  // RNG parity: Looking Glasses consume per-AS draws during placement
  // setup, so the replay must deploy them exactly when the original
  // campaign did — never because the requested algos changed.
  const auto has_lg = [](const std::vector<exp::Algo>& v) {
    return std::find(v.begin(), v.end(), exp::Algo::kNdLg) != v.end();
  };
  const bool deploy_lg = ck->recording ? ck->scenario.frac_blocked > 0.0
                                       : has_lg(ck->algos);
  if (!deploy_lg && has_lg(algos)) {
    std::cerr << "netdiag: the original campaign deployed no Looking "
                 "Glasses; nd-lg cannot be scored on replay\n";
    return 2;
  }

  exp::ScenarioConfig cfg = ck->scenario;
  cfg.num_threads = 1;
  exp::Runner runner(cfg);
  std::set<std::size_t> placements;
  for (const auto& q : ck->quarantined) placements.insert(q.placement);
  std::vector<exp::ScoredTrial> recovered;
  for (std::size_t pl : placements) {
    for (const auto& st : runner.replay_placement(pl, algos, deploy_lg)) {
      for (const auto& q : ck->quarantined) {
        if (q.placement == st.placement && q.trial == st.trial) {
          recovered.push_back(st);
          break;
        }
      }
    }
  }
  std::cout << "replayed " << placements.size() << " placement(s), recovered "
            << recovered.size() << " of " << ck->quarantined.size()
            << " quarantined trial(s)\n";
  for (const auto& st : recovered) {
    std::cout << "  placement " << st.placement << " trial " << st.trial
              << ": diagnosability " << st.result.diagnosability << "\n";
  }
  if (const std::string f = flags.get("csv"); !f.empty()) {
    std::ofstream os(f);
    if (!os) {
      std::cerr << "netdiag: cannot write " << f << "\n";
      return 1;
    }
    exp::write_csv(os, recovered, algos);
    std::cout << "wrote " << f << " (" << recovered.size() << " rows)\n";
  }
  return 0;
}

/// Offline inspection of a durable server's on-disk session journals.
/// Never mutates anything — safe to run against a live server's state
/// directory (segments are append-only; SNAPSHOT is replaced atomically).
int cmd_wal(util::Flags& flags) {
  namespace rlog = util::record_log;
  flags.allow({"state-dir", "session", "json", "help"});
  if (!flags.ok() || flags.get_bool("help")) {
    std::cerr << "netdiag wal --state-dir DIR [--session NAME] [--json]\n"
                 "verifies and summarizes each session's write-ahead journal:"
                 " record counts,\nLSN ranges, per-source ack watermarks, and"
                 " the offset of the first corrupt\nframe (exit 1 when any"
                 " corruption is found)\n";
    for (const auto& e : flags.errors()) std::cerr << "  " << e << "\n";
    return flags.ok() ? 0 : 2;
  }
  const std::string state_dir = flags.get("state-dir");
  if (state_dir.empty()) {
    std::cerr << "netdiag: wal requires --state-dir\n";
    return 2;
  }
  const std::string filter = flags.get("session");
  const bool as_json = flags.get_bool("json");
  const std::uint64_t epoch = svc::read_epoch(state_dir);
  bool any_corrupt = false;

  svc::Json sessions_json = svc::Json::array();
  if (!as_json) {
    std::cout << "state dir " << state_dir << ", epoch " << epoch << "\n";
  }
  for (const auto& dir_name : svc::list_session_dirs(state_dir)) {
    const auto decoded = svc::decode_session_dir(dir_name);
    const std::string name = decoded.value_or("?" + dir_name);
    if (!filter.empty() && name != filter) continue;
    const std::string dir = state_dir + "/sessions/" + dir_name;
    const svc::Inspection insp = svc::inspect_session_dir(dir);

    // The snapshot's LSN floor and ack watermarks, then the journal's
    // records on top — the same fold recovery performs.
    std::uint64_t wal = 0;
    bool snapshot_ok = !insp.has_snapshot;
    std::map<std::string, std::uint64_t> acks;
    if (insp.has_snapshot) {
      const auto doc = svc::Json::parse(insp.snapshot, nullptr);
      const svc::Json* w =
          doc && doc->is_object() ? doc->find("wal") : nullptr;
      if (w != nullptr && w->is_number() && w->as_int() >= 0) {
        snapshot_ok = true;
        wal = static_cast<std::uint64_t>(w->as_int());
        if (const svc::Json* a = doc->find("src_acks");
            a != nullptr && a->is_object()) {
          for (const auto& [src, seq] : a->members()) {
            if (seq.is_number() && seq.as_int() >= 0) {
              acks[src] = static_cast<std::uint64_t>(seq.as_int());
            }
          }
        }
      }
    }

    std::size_t records = 0;
    std::uint64_t first_lsn = 0, last_lsn = 0;
    std::string corrupt_file;
    std::uint64_t corrupt_offset = 0;
    for (std::size_t i = 0; i < insp.segments.size(); ++i) {
      const auto& seg = insp.segments[i];
      const bool is_last = i + 1 == insp.segments.size();
      const auto& scan = seg.scan;
      const bool corrupt =
          scan.verdict == rlog::Scan::Verdict::kCorrupt ||
          (scan.verdict == rlog::Scan::Verdict::kTornTail && !is_last);
      if (corrupt && corrupt_file.empty()) {
        corrupt_file = seg.path;
        corrupt_offset = scan.good_bytes;
      }
      records += scan.records;
      if (scan.records > 0) {
        if (first_lsn == 0) first_lsn = scan.first_seq;
        last_lsn = scan.last_seq;
      }
      if (const auto bytes = util::read_file(seg.path, nullptr);
          bytes.has_value()) {
        rlog::for_each(
            std::string_view(bytes->data(),
                             std::min<std::size_t>(bytes->size(),
                                                   scan.good_bytes)),
            [&](std::uint64_t lsn, std::string_view payload) {
              if (lsn <= wal) return true;
              const auto rec = svc::Json::parse(payload, nullptr);
              if (!rec || !rec->is_object()) return true;
              const svc::Json* t = rec->find("t");
              if (t == nullptr || !t->is_string()) return true;
              if (t->as_string() == "baseline") {
                acks.clear();
              } else if (t->as_string() == "bobs") {
                const svc::Json* src = rec->find("src");
                const svc::Json* seq = rec->find("seq");
                if (src != nullptr && src->is_string() && seq != nullptr &&
                    seq->is_number() && seq->as_int() >= 0) {
                  acks[src->as_string()] =
                      static_cast<std::uint64_t>(seq->as_int());
                }
              }
              return true;
            });
      }
    }
    const bool corrupt = !snapshot_ok || !corrupt_file.empty();
    any_corrupt = any_corrupt || corrupt;

    if (as_json) {
      svc::Json js = svc::Json::object();
      js.set("session", svc::Json::string(name));
      js.set("snapshot", svc::Json::boolean(insp.has_snapshot));
      js.set("snapshot_wal", svc::Json::uinteger(wal));
      js.set("segments", svc::Json::uinteger(insp.segments.size()));
      js.set("records", svc::Json::uinteger(records));
      js.set("first_lsn", svc::Json::uinteger(first_lsn));
      js.set("last_lsn", svc::Json::uinteger(last_lsn));
      js.set("corrupt", svc::Json::boolean(corrupt));
      if (!corrupt_file.empty()) {
        js.set("corrupt_file", svc::Json::string(corrupt_file));
        js.set("corrupt_offset", svc::Json::uinteger(corrupt_offset));
      }
      js.set("quarantined_files", svc::Json::uinteger(insp.quarantined_files));
      svc::Json jacks = svc::Json::object();
      for (const auto& [src, seq] : acks) {
        jacks.set(src, svc::Json::uinteger(seq));
      }
      js.set("watermarks", std::move(jacks));
      sessions_json.push_back(std::move(js));
      continue;
    }
    std::cout << "session \"" << name << "\"\n"
              << "  snapshot: "
              << (insp.has_snapshot
                      ? (snapshot_ok ? "wal " + std::to_string(wal)
                                     : std::string("UNPARSEABLE"))
                      : std::string("none"))
              << "\n  journal: " << insp.segments.size() << " segment(s), "
              << records << " record(s)";
    if (records > 0) {
      std::cout << ", lsn " << first_lsn << ".." << last_lsn;
    }
    std::cout << "\n";
    if (!corrupt_file.empty()) {
      std::cout << "  CORRUPT: first bad frame at offset " << corrupt_offset
                << " in " << corrupt_file << "\n";
    }
    if (insp.quarantined_files > 0) {
      std::cout << "  quarantined files: " << insp.quarantined_files << "\n";
    }
    if (!acks.empty()) {
      std::cout << "  watermarks:";
      for (const auto& [src, seq] : acks) {
        std::cout << " " << src << "=" << seq;
      }
      std::cout << "\n";
    }
  }
  if (as_json) {
    svc::Json out = svc::Json::object();
    out.set("state_dir", svc::Json::string(state_dir));
    out.set("epoch", svc::Json::uinteger(epoch));
    out.set("sessions", std::move(sessions_json));
    std::cout << out.dump() << "\n";
  }
  return any_corrupt ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  util::Flags flags = util::Flags::parse(argc - 1, argv + 1);
  if (cmd == "topo") return cmd_topo(flags);
  if (cmd == "plan") return cmd_plan(flags);
  if (cmd == "run") return cmd_run(flags);
  if (cmd == "diagnose") return cmd_diagnose(flags);
  if (cmd == "watch") return cmd_watch(flags);
  if (cmd == "serve") return cmd_serve(flags);
  if (cmd == "submit") return cmd_submit(flags);
  if (cmd == "top") return cmd_top(flags);
  if (cmd == "tail") return cmd_tail(flags);
  if (cmd == "replay") return cmd_replay(flags);
  if (cmd == "wal") return cmd_wal(flags);
  if (cmd == "trace-merge") return cmd_trace_merge(flags);
  if (cmd == "requarantine") return cmd_requarantine(flags);
  return usage();
}
