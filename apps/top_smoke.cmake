# Smoke test for `netdiag top`: serve on a private unix socket, poll the
# metrics verb twice through `top`, then shut the daemon down. Driven
# through sh so one test owns the daemon's whole lifetime.
if(NOT DEFINED NETDIAG)
  message(FATAL_ERROR "pass -DNETDIAG=<path to netdiag>")
endif()
execute_process(
  COMMAND sh -c "\
    rm -f netdiag_top.sock; \
    '${NETDIAG}' serve --listen unix:netdiag_top.sock --threads 2 & \
    srv=$!; \
    for i in $(seq 1 50); do [ -S netdiag_top.sock ] && break; sleep 0.1; done; \
    '${NETDIAG}' top --connect unix:netdiag_top.sock --iterations 2 \
        --interval-ms 50; \
    rc=$?; \
    '${NETDIAG}' submit --connect unix:netdiag_top.sock --op shutdown \
        >/dev/null 2>&1; \
    kill $srv 2>/dev/null; \
    wait $srv 2>/dev/null; \
    exit $rc"
  OUTPUT_VARIABLE out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "netdiag top exited ${rc}:\n${out}")
endif()
if(NOT out MATCHES "netd_svc_requests_total")
  message(FATAL_ERROR "top output misses the per-op counter table:\n${out}")
endif()
message(STATUS "netdiag top smoke passed")
