// netdiag-agent: one durable sensor of a distributed fleet.
//
// Measures seeded observation rounds, spools them crash-safely to disk,
// and ships them to a netdiag daemon as batched observes with ack
// watermarks (exactly-once ingest). Designed to be SIGKILLed and re-run:
// a restarted agent recovers its spool, re-measures only the missing
// rounds and redelivers idempotently. Exit codes: 0 = every round acked,
// 1 = configuration/spool/protocol error, 3 = spooled locally but the
// server stayed unreachable (re-run to resume shipping).
#include <iostream>
#include <string>

#include "agent/agent.h"
#include "obs/span.h"
#include "svc/fault.h"
#include "svc/json.h"
#include "util/flags.h"

namespace {

using namespace netd;

int usage(const util::Flags& flags) {
  std::cerr <<
      "usage: netdiag-agent --endpoint unix:PATH|HOST:PORT --spool-dir DIR\n"
      "                     [--name ID] [--session NAME]\n"
      "  world:    [--rounds N] [--sensors N] [--topo-seed S] [--ases N]\n"
      "            [--tier2 N] [--stubs N] [--placement-seed S]\n"
      "            [--fail-round R] [--fail-seed S]\n"
      "  session:  [--threshold K] [--algo tomo|nd-edge|nd-bgpigp]\n"
      "            [--granularity none|per-neighbor|per-prefix]\n"
      "  shipping: [--batch-max N] [--ship-max-failures N]\n"
      "            [--max-retries N] [--connect-timeout-ms MS]\n"
      "            [--request-timeout-ms MS] [--backoff-base-ms MS]\n"
      "            [--backoff-max-ms MS] [--seed S] [--chaos-seed S]\n"
      "  spool:    [--spool-segment-bytes N] [--spool-budget-bytes N]\n"
      "            [--fsync-each] [--no-retain-acked] [--generate-only]\n"
      "  tracing:  [--trace-out FILE]  write the agent-side spans (spool,\n"
      "            ship) as a Chrome trace; merge with the server's file\n"
      "            via `netdiag trace-merge`\n"
      "exit codes: 0 all rounds acked; 1 error; 3 server unreachable\n"
      "(spool intact, re-run to resume)\n";
  for (const auto& e : flags.errors()) std::cerr << "  " << e << "\n";
  return flags.ok() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags = util::Flags::parse(argc, argv);
  flags.allow({"endpoint", "spool-dir", "name", "session", "rounds",
               "sensors", "topo-seed", "ases", "tier2", "stubs",
               "placement-seed", "fail-round", "fail-seed", "threshold",
               "algo", "granularity", "batch-max", "ship-max-failures",
               "max-retries", "connect-timeout-ms", "request-timeout-ms",
               "backoff-base-ms", "backoff-max-ms", "seed", "chaos-seed",
               "spool-segment-bytes", "spool-budget-bytes", "fsync-each",
               "no-retain-acked", "generate-only", "trace-out", "help"});
  if (!flags.ok() || flags.get_bool("help")) return usage(flags);

  agent::AgentConfig cfg;
  cfg.name = flags.get("name", "agent");
  cfg.endpoint = flags.get("endpoint");
  cfg.session = flags.get("session", "fleet");
  cfg.spool_dir = flags.get("spool-dir");
  cfg.alarm_threshold = flags.get_uint("threshold", 2);
  cfg.algo = flags.get("algo", "nd-bgpigp");
  cfg.granularity = flags.get("granularity", "per-neighbor");
  cfg.topo_seed = static_cast<std::uint64_t>(flags.get_uint("topo-seed", 1));
  cfg.ases = flags.get_uint("ases", 165);
  cfg.tier2 = flags.get_uint("tier2", 22);
  cfg.stubs = flags.get_uint("stubs", 200);
  cfg.sensors = flags.get_uint("sensors", 10);
  cfg.placement_seed =
      static_cast<std::uint64_t>(flags.get_uint("placement-seed", 7));
  cfg.rounds = flags.get_uint("rounds", 10);
  cfg.fail_round = flags.get_uint("fail-round", 0);
  cfg.fail_seed = static_cast<std::uint64_t>(flags.get_uint("fail-seed", 99));
  cfg.batch_max_items = flags.get_uint("batch-max", 8);
  cfg.ship_max_failures = flags.get_uint("ship-max-failures", 8);
  cfg.client.connect_timeout_ms =
      static_cast<int>(flags.get_int("connect-timeout-ms", 2000));
  cfg.client.request_timeout_ms =
      static_cast<int>(flags.get_int("request-timeout-ms", 30000));
  cfg.client.max_retries = flags.get_uint("max-retries", 4);
  cfg.client.backoff_base_ms =
      static_cast<int>(flags.get_int("backoff-base-ms", 10));
  cfg.client.backoff_max_ms =
      static_cast<int>(flags.get_int("backoff-max-ms", 500));
  cfg.client.seed = static_cast<std::uint64_t>(flags.get_uint("seed", 1));
  if (flags.has("chaos-seed")) {
    cfg.client.fault_plan = svc::FaultPlan::chaos(
        static_cast<std::uint64_t>(flags.get_uint("chaos-seed", 1)));
  }
  cfg.spool_segment_bytes =
      static_cast<std::uint64_t>(flags.get_uint("spool-segment-bytes",
                                                4u << 20));
  cfg.spool_budget_bytes =
      static_cast<std::uint64_t>(flags.get_uint("spool-budget-bytes", 0));
  cfg.spool_fsync_each = flags.get_bool("fsync-each");
  cfg.retain_acked = !flags.get_bool("no-retain-acked");
  cfg.generate_only = flags.get_bool("generate-only");
  if (!flags.ok()) return usage(flags);
  if (cfg.spool_dir.empty() ||
      (cfg.endpoint.empty() && !cfg.generate_only)) {
    return usage(flags);
  }

  const std::string trace_out = flags.get("trace-out");
  if (!trace_out.empty()) obs::TraceSink::install();

  agent::Agent a(std::move(cfg));
  std::string error;
  const int rc = a.run(&error);
  if (rc != agent::Agent::kExitOk) {
    std::cerr << "netdiag-agent: " << error << "\n";
  }
  if (!trace_out.empty()) {
    std::string terror;
    if (!obs::TraceSink::write_chrome_trace(trace_out, &terror)) {
      std::cerr << "netdiag-agent: " << terror << "\n";
    }
    obs::TraceSink::uninstall();
  }

  // One machine-readable summary line on stdout; the chaos harness and
  // operators both read it.
  const auto& s = a.summary();
  svc::Json j = svc::Json::object();
  j.set("agent", svc::Json::string(flags.get("name", "agent")));
  j.set("exit", svc::Json::integer(rc));
  j.set("spooled", svc::Json::uinteger(s.spooled));
  j.set("generated", svc::Json::uinteger(s.generated));
  j.set("acked", svc::Json::uinteger(s.acked));
  j.set("batches", svc::Json::uinteger(s.batches));
  j.set("applied", svc::Json::uinteger(s.applied));
  j.set("deduped", svc::Json::uinteger(s.deduped));
  j.set("rehellos", svc::Json::uinteger(s.rehellos));
  j.set("round", svc::Json::uinteger(s.round));
  j.set("alarmed", svc::Json::boolean(s.alarmed));
  j.set("diagnosed", svc::Json::boolean(s.diagnosis.has_value()));
  j.set("recovered_records", svc::Json::uinteger(s.recovery.records));
  j.set("torn_tails", svc::Json::uinteger(s.recovery.torn_tails));
  j.set("quarantined", svc::Json::uinteger(s.recovery.quarantined));
  j.set("stale_temps", svc::Json::uinteger(s.recovery.stale_temps));
  j.set("dropped_records", svc::Json::uinteger(s.dropped.records));
  j.set("dropped_bytes", svc::Json::uinteger(s.dropped.bytes));
  std::cout << j.dump() << "\n";
  return rc;
}
