# Validates the observability outputs of the netdiag_obs_outputs smoke
# run (cmake -P script so the check runs on the bare CI box):
#   - the Chrome trace file is a JSON array with at least one "ph":"X"
#     event carrying deterministic span ids
#   - the Prometheus file holds at least one sample line and ends in \n
file(READ netdiag_obs.trace.json TRACE)
string(STRIP "${TRACE}" STRIPPED)
if(NOT STRIPPED MATCHES "^\\[")
  message(FATAL_ERROR "trace file does not start a JSON array")
endif()
if(NOT STRIPPED MATCHES "\\]$")
  message(FATAL_ERROR "trace file does not close the JSON array")
endif()
if(NOT TRACE MATCHES "\"ph\":\"X\"")
  message(FATAL_ERROR "trace file holds no complete ('X') events")
endif()
if(NOT TRACE MATCHES "\"name\":\"placement\"")
  message(FATAL_ERROR "trace file holds no placement span")
endif()
if(NOT TRACE MATCHES "\"name\":\"solve\"")
  message(FATAL_ERROR "trace file holds no solver span")
endif()

file(READ netdiag_obs.prom PROM)
if(NOT PROM MATCHES "netd_solve_total [0-9]+\n")
  message(FATAL_ERROR "metrics file misses the solver counter")
endif()
if(NOT PROM MATCHES "# TYPE netd_runner_trials_total counter\n")
  message(FATAL_ERROR "metrics file misses the runner trial counter family")
endif()
if(NOT PROM MATCHES "\n$")
  message(FATAL_ERROR "metrics file does not end with a newline")
endif()
message(STATUS "observability outputs look sane")
