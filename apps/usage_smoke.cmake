# Usage-drift guard: every verb main() dispatches (`cmd == "..."` in
# netdiag.cpp) must appear as a command entry in the no-args usage text,
# so adding a verb without documenting it fails the suite.
#
# Driven with -DNETDIAG=<binary> -DSRC=<apps source dir>.
if(NOT NETDIAG OR NOT SRC)
  message(FATAL_ERROR "usage_smoke: pass -DNETDIAG=... and -DSRC=...")
endif()

file(READ "${SRC}/netdiag.cpp" source)
string(REGEX MATCHALL "cmd == \"[a-z]+\"" dispatches "${source}")
if(dispatches STREQUAL "")
  message(FATAL_ERROR "usage_smoke: no dispatched verbs found in netdiag.cpp")
endif()

execute_process(COMMAND "${NETDIAG}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "usage_smoke: no-args netdiag must exit nonzero")
endif()
if(NOT err MATCHES "usage: netdiag")
  message(FATAL_ERROR "usage_smoke: no usage text on stderr")
endif()

set(verbs "")
foreach(dispatch IN LISTS dispatches)
  string(REGEX REPLACE "cmd == \"([a-z]+)\"" "\\1" verb "${dispatch}")
  list(APPEND verbs "${verb}")
  # Each verb heads a usage line: two-space indent, the verb, whitespace,
  # then its one-line description.
  if(NOT err MATCHES "\n  ${verb} +[a-z]")
    message(FATAL_ERROR
            "usage_smoke: dispatched verb '${verb}' missing from usage()")
  endif()
endforeach()
list(LENGTH verbs n)
message(STATUS "usage_smoke: all ${n} dispatched verbs documented (${verbs})")
